// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies — the foundation the path-sensitive bbvet analyzers
// (lockbalance, errflow, ackcommit, goroutineleak) share. Like the rest
// of internal/lint it is dependency-free: go/ast and go/token only, no
// x/tools.
//
// A Graph is a set of basic blocks. Each block carries the AST nodes
// evaluated in it, in source order; nodes are statements or the
// condition/tag expressions of branch statements (an *ast.IfStmt never
// appears wholesale — its Cond lands in the block that evaluates it and
// its bodies become successor blocks). Nested *ast.FuncLit bodies are
// opaque: a literal appears inside whatever node carries it, but its
// body belongs to a different function and must be analyzed as its own
// Graph (use Inspect, which refuses to descend into literals).
//
// Edges model if/else, for (init/cond/post), range, switch and type
// switch (with fallthrough), select, labeled break/continue, goto,
// return and panic. Deferred calls are NOT wired into exit edges —
// *ast.DeferStmt nodes stay ordinary block nodes, because which defers
// run at an exit depends on the path that reached it; path-sensitive
// analyzers interpret them as path facts (exactly what lockbalance does
// with defer mu.Unlock()).
//
// The graph exposes dominators via the Cooper–Harvey–Kennedy iterative
// algorithm: Idom, Dominates, and reachability via CanReach.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the AST nodes evaluated in this block, in source order.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

// Graph is the CFG of one function body.
type Graph struct {
	// Blocks holds every block; Blocks[0] is Entry, Blocks[1] is Exit.
	Blocks []*Block
	// Entry is where control enters the function.
	Entry *Block
	// Exit is the synthetic block every return, panic and
	// fall-off-the-end path converges to. It has no nodes.
	Exit *Block

	idom []*Block // lazily computed immediate dominators, by Index
	rpo  []int    // reverse-postorder number per block, -1 if unreachable
}

// New builds the CFG of a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	g.Entry = g.newBlock()
	g.Exit = g.newBlock()
	b := &builder{g: g, labels: map[string]*labelTarget{}}
	last := b.stmtList(g.Entry, body.List)
	if last != nil {
		addEdge(last, g.Exit)
	}
	b.patchGotos()
	return g
}

func (g *Graph) newBlock() *Block {
	blk := &Block{Index: len(g.Blocks)}
	g.Blocks = append(g.Blocks, blk)
	return blk
}

func addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// labelTarget records the blocks a labeled break/continue/goto resolves
// to.
type labelTarget struct {
	breakTo    *Block // labeled loop/switch/select exit
	continueTo *Block // labeled loop post/header
	gotoTo     *Block // block starting at the labeled statement
}

type builder struct {
	g      *Graph
	labels map[string]*labelTarget

	// breakTo/continueTo are the innermost enclosing targets.
	breakStack    []*Block
	continueStack []*Block

	// pendingGotos are goto statements seen before their label.
	pendingGotos []pendingGoto

	// labeledStmt is the label about to bind to the next loop/switch/
	// select the builder enters (set while handling a LabeledStmt).
	labeledStmt string
}

type pendingGoto struct {
	from  *Block
	label string
}

// stmtList threads the statements through cur, returning the block that
// falls out the end (nil if control cannot fall through).
func (b *builder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/panic/branch: still build its
			// graph so analyzers see its nodes, rooted in a fresh block
			// with no predecessors.
			cur = b.g.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		join := b.g.newBlock()
		thenB := b.g.newBlock()
		addEdge(cur, thenB)
		if out := b.stmtList(thenB, s.Body.List); out != nil {
			addEdge(out, join)
		}
		if s.Else != nil {
			elseB := b.g.newBlock()
			addEdge(cur, elseB)
			if out := b.stmt(elseB, s.Else); out != nil {
				addEdge(out, join)
			}
		} else {
			addEdge(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		header := b.g.newBlock()
		addEdge(cur, header)
		if s.Cond != nil {
			header.Nodes = append(header.Nodes, s.Cond)
		}
		join := b.g.newBlock()
		var post *Block
		backTo := header
		if s.Post != nil {
			post = b.g.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			addEdge(post, header)
			backTo = post
		}
		if s.Cond != nil {
			addEdge(header, join)
		}
		body := b.g.newBlock()
		addEdge(header, body)
		b.pushLoop(join, backTo, s)
		if out := b.stmtList(body, s.Body.List); out != nil {
			addEdge(out, backTo)
		}
		b.popLoop()
		return join

	case *ast.RangeStmt:
		header := b.g.newBlock()
		addEdge(cur, header)
		// The header evaluates the ranged expression and binds key/value;
		// record the expression so analyzers see its uses.
		header.Nodes = append(header.Nodes, s.X)
		if s.Key != nil {
			header.Nodes = append(header.Nodes, s.Key)
		}
		if s.Value != nil {
			header.Nodes = append(header.Nodes, s.Value)
		}
		join := b.g.newBlock()
		addEdge(header, join)
		body := b.g.newBlock()
		addEdge(header, body)
		b.pushLoop(join, header, s)
		if out := b.stmtList(body, s.Body.List); out != nil {
			addEdge(out, header)
		}
		b.popLoop()
		return join

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(cur, s.Body.List, s)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(cur, s.Body.List, s)

	case *ast.SelectStmt:
		join := b.g.newBlock()
		b.breakStack = append(b.breakStack, join)
		reachable := false
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			clause := b.g.newBlock()
			addEdge(cur, clause)
			if cc.Comm != nil {
				clause.Nodes = append(clause.Nodes, cc.Comm)
			}
			if out := b.stmtList(clause, cc.Body); out != nil {
				addEdge(out, join)
				reachable = true
			}
		}
		b.breakStack = b.breakStack[:len(b.breakStack)-1]
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no successor.
			return nil
		}
		if !reachable && len(join.Preds) == 0 {
			return nil
		}
		return join

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		addEdge(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			target := b.breakTarget(s)
			if target != nil {
				addEdge(cur, target)
			}
			return nil
		case token.CONTINUE:
			target := b.continueTarget(s)
			if target != nil {
				addEdge(cur, target)
			}
			return nil
		case token.GOTO:
			if s.Label != nil {
				if lt, ok := b.labels[s.Label.Name]; ok && lt.gotoTo != nil {
					addEdge(cur, lt.gotoTo)
				} else {
					b.pendingGotos = append(b.pendingGotos, pendingGoto{from: cur, label: s.Label.Name})
				}
			}
			return nil
		case token.FALLTHROUGH:
			// Handled by switchBody via clause ordering; mark so the
			// clause links to its successor.
			cur.Nodes = append(cur.Nodes, s)
			return cur
		}
		return cur

	case *ast.LabeledStmt:
		lblock := b.g.newBlock()
		addEdge(cur, lblock)
		lt := b.labels[s.Label.Name]
		if lt == nil {
			lt = &labelTarget{}
			b.labels[s.Label.Name] = lt
		}
		lt.gotoTo = lblock
		// Bind the label to the statement it precedes so labeled
		// break/continue resolve inside b.stmt via the label map.
		b.labeledStmt = s.Label.Name
		out := b.stmt(lblock, s.Stmt)
		b.labeledStmt = ""
		return out

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if isPanicCall(s.X) {
			addEdge(cur, b.g.Exit)
			return nil
		}
		return cur

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.DeferStmt, *ast.GoStmt, *ast.EmptyStmt:
		cur.Nodes = append(cur.Nodes, s)
		return cur

	default:
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchBody builds the clause blocks of a switch/type-switch, honoring
// fallthrough and break.
func (b *builder) switchBody(cur *Block, clauses []ast.Stmt, owner ast.Stmt) *Block {
	join := b.g.newBlock()
	b.registerLabeled(join, nil)
	b.breakStack = append(b.breakStack, join)
	// Build clause entry blocks first so fallthrough can link forward.
	entries := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		entries[i] = b.g.newBlock()
		addEdge(cur, entries[i])
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		addEdge(cur, join)
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		clause := entries[i]
		for _, e := range cc.List {
			clause.Nodes = append(clause.Nodes, e)
		}
		out := b.stmtList(clause, cc.Body)
		if out == nil {
			continue
		}
		// A clause ending in fallthrough links to the next clause's
		// entry; otherwise it falls to the join.
		if n := len(out.Nodes); n > 0 {
			if br, ok := out.Nodes[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(entries) {
				addEdge(out, entries[i+1])
				continue
			}
		}
		addEdge(out, join)
	}
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	return join
}

// pushLoop enters a loop context: break goes to join, continue to back.
func (b *builder) pushLoop(join, back *Block, owner ast.Stmt) {
	b.registerLabeled(join, back)
	b.breakStack = append(b.breakStack, join)
	b.continueStack = append(b.continueStack, back)
}

func (b *builder) popLoop() {
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.continueStack = b.continueStack[:len(b.continueStack)-1]
}

// registerLabeled binds the pending label (if the owner statement was
// labeled) to the loop/switch targets.
func (b *builder) registerLabeled(breakTo, continueTo *Block) {
	if b.labeledStmt == "" {
		return
	}
	lt := b.labels[b.labeledStmt]
	if lt == nil {
		lt = &labelTarget{}
		b.labels[b.labeledStmt] = lt
	}
	lt.breakTo = breakTo
	lt.continueTo = continueTo
	b.labeledStmt = ""
}

func (b *builder) breakTarget(s *ast.BranchStmt) *Block {
	if s.Label != nil {
		if lt := b.labels[s.Label.Name]; lt != nil {
			return lt.breakTo
		}
		return nil
	}
	if n := len(b.breakStack); n > 0 {
		return b.breakStack[n-1]
	}
	return nil
}

func (b *builder) continueTarget(s *ast.BranchStmt) *Block {
	if s.Label != nil {
		if lt := b.labels[s.Label.Name]; lt != nil {
			return lt.continueTo
		}
		return nil
	}
	if n := len(b.continueStack); n > 0 {
		return b.continueStack[n-1]
	}
	return nil
}

func (b *builder) patchGotos() {
	for _, pg := range b.pendingGotos {
		if lt, ok := b.labels[pg.label]; ok && lt.gotoTo != nil {
			addEdge(pg.from, lt.gotoTo)
		} else {
			// Unresolvable goto (malformed source): treat as exit so the
			// block is terminated rather than silently falling through.
			addEdge(pg.from, b.g.Exit)
		}
	}
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// --- dominators -------------------------------------------------------

// computeRPO numbers reachable blocks in reverse postorder from Entry.
func (g *Graph) computeRPO() {
	g.rpo = make([]int, len(g.Blocks))
	for i := range g.rpo {
		g.rpo[i] = -1
	}
	var post []*Block
	seen := make([]bool, len(g.Blocks))
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	n := len(post)
	for i, b := range post {
		g.rpo[b.Index] = n - 1 - i
	}
}

// Dominators computes (and caches) immediate dominators with the
// Cooper–Harvey–Kennedy iterative algorithm. Unreachable blocks have a
// nil idom.
func (g *Graph) Dominators() {
	if g.idom != nil {
		return
	}
	g.computeRPO()
	g.idom = make([]*Block, len(g.Blocks))
	g.idom[g.Entry.Index] = g.Entry

	// Reachable blocks in reverse postorder.
	order := make([]*Block, 0, len(g.Blocks))
	for _, b := range g.Blocks {
		if g.rpo[b.Index] >= 0 {
			order = append(order, b)
		}
	}
	// Sort by RPO number (insertion sort: graphs are small).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && g.rpo[order[j].Index] < g.rpo[order[j-1].Index]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	intersect := func(a, b *Block) *Block {
		for a != b {
			for g.rpo[a.Index] > g.rpo[b.Index] {
				a = g.idom[a.Index]
			}
			for g.rpo[b.Index] > g.rpo[a.Index] {
				b = g.idom[b.Index]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == g.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if g.idom[p.Index] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && g.idom[b.Index] != newIdom {
				g.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
}

// Idom returns b's immediate dominator (Entry's idom is Entry itself;
// unreachable blocks return nil).
func (g *Graph) Idom(b *Block) *Block {
	g.Dominators()
	return g.idom[b.Index]
}

// Dominates reports whether a dominates b (every path from Entry to b
// passes through a). A block dominates itself. Unreachable blocks are
// dominated by nothing and dominate nothing.
func (g *Graph) Dominates(a, b *Block) bool {
	g.Dominators()
	if g.idom[a.Index] == nil || g.idom[b.Index] == nil {
		return false
	}
	for {
		if b == a {
			return true
		}
		next := g.idom[b.Index]
		if next == b { // reached Entry
			return false
		}
		b = next
	}
}

// CanReach reports whether control can flow from a to b (b reachable
// from a by following successor edges; a reaches itself).
func (g *Graph) CanReach(a, b *Block) bool {
	if a == b {
		return true
	}
	seen := make([]bool, len(g.Blocks))
	work := []*Block{a}
	seen[a.Index] = true
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range cur.Succs {
			if s == b {
				return true
			}
			if !seen[s.Index] {
				seen[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return false
}

// Inspect walks n in pre-order like ast.Inspect but never descends into
// an *ast.FuncLit body: a literal's statements belong to a different
// function's CFG. The literal node itself IS visited (so analyzers can
// note its existence); its children are not.
func Inspect(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok {
			f(m)
			return false
		}
		return f(m)
	})
}
