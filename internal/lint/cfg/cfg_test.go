package cfg_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"bytebrain/internal/lint/cfg"
)

// buildGraph parses a function body and returns its CFG plus a map from
// mark("name") calls to the block containing them.
func buildGraph(t *testing.T, body string) (*cfg.Graph, map[string]*cfg.Block) {
	t.Helper()
	src := "package p\n\nfunc mark(string) {}\nfunc cond() bool { return true }\nfunc f(ch chan int, xs []int, n int, err error) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	g := cfg.New(fn.Body)
	marks := map[string]*cfg.Block{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			cfg.Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" && len(call.Args) == 1 {
					if lit, ok := call.Args[0].(*ast.BasicLit); ok {
						name := strings.Trim(lit.Value, `"`)
						if prev, dup := marks[name]; dup && prev != b {
							t.Fatalf("marker %q appears in two blocks", name)
						}
						marks[name] = b
					}
				}
				return true
			})
		}
	}
	return g, marks
}

type domTest struct {
	name string
	body string
	// Relations between markers (or the pseudo-markers "entry"/"exit"):
	// "a<b" a dominates b, "a!<b" a does not dominate b,
	// "a>b" a can reach b, "a!>b" a cannot reach b.
	rels []string
}

func TestDominatorsAndReachability(t *testing.T) {
	tests := []domTest{
		{
			name: "if-else",
			body: `
mark("top")
if cond() {
	mark("then")
} else {
	mark("else")
}
mark("join")`,
			rels: []string{
				"top<then", "top<else", "top<join",
				"then!<join", "else!<join",
				"then>join", "else>join", "then!>else",
				"entry<exit", "join>exit",
			},
		},
		{
			name: "if-no-else",
			body: `
mark("top")
if cond() {
	mark("then")
}
mark("join")`,
			rels: []string{"top<join", "then!<join", "top>join", "then>join"},
		},
		{
			name: "for-cond-loop",
			body: `
mark("top")
for cond() {
	mark("body")
}
mark("after")`,
			rels: []string{
				"top<body", "top<after", "body!<after",
				"body>body", // back edge
				"body>after", "after!>body",
			},
		},
		{
			name: "for-infinite-with-break",
			body: `
for {
	if cond() {
		mark("brk")
		break
	}
	mark("body")
}
mark("after")`,
			rels: []string{
				"brk<after", // only exit is the break
				"body!<after", "body>brk", "brk!>body",
			},
		},
		{
			name: "for-three-clause",
			body: `
for i := 0; i < n; i++ {
	mark("body")
}
mark("after")`,
			rels: []string{"body!<after", "body>after", "body>body"},
		},
		{
			name: "range-loop",
			body: `
for _, x := range xs {
	_ = x
	mark("body")
}
mark("after")`,
			rels: []string{"body!<after", "body>after", "body>body", "after!>body"},
		},
		{
			name: "early-return",
			body: `
mark("top")
if cond() {
	mark("ret")
	return
}
mark("rest")`,
			rels: []string{
				"top<rest", "ret!>rest", "ret>exit", "rest>exit",
				"ret!<exit", "rest!<exit",
			},
		},
		{
			name: "panic-terminates",
			body: `
mark("top")
if cond() {
	mark("boom")
	panic("x")
}
mark("rest")`,
			rels: []string{"boom!>rest", "boom>exit", "top<rest"},
		},
		{
			name: "switch-fallthrough",
			body: `
switch n {
case 1:
	mark("one")
	fallthrough
case 2:
	mark("two")
default:
	mark("def")
}
mark("after")`,
			rels: []string{
				"one>two", // fallthrough edge
				"two!>one", "def!>one",
				"one!<after", "two!<after",
				"one>after", "two>after", "def>after",
			},
		},
		{
			name: "switch-no-default-skips",
			body: `
mark("top")
switch n {
case 1:
	mark("one")
}
mark("after")`,
			rels: []string{"top<after", "one!<after", "top>after"},
		},
		{
			name: "select",
			body: `
mark("top")
select {
case <-ch:
	mark("recv")
case ch <- 1:
	mark("send")
}
mark("after")`,
			rels: []string{
				"top<recv", "top<send", "top<after",
				"recv!<after", "send!<after", "recv>after", "send>after",
			},
		},
		{
			name: "defer-stays-in-block",
			body: `
mark("top")
defer mark("deferred")
mark("same")`,
			rels: []string{"top<same"},
		},
		{
			name: "labeled-continue",
			body: `
outer:
for cond() {
	for cond() {
		if cond() {
			mark("cont")
			continue outer
		}
		mark("inner")
	}
	mark("tail")
}
mark("after")`,
			rels: []string{
				// continue outer loops back to the outer header, so cont
				// reaches everything in the loop again — the discriminating
				// fact is that it does NOT dominate the inner body.
				"cont>after", "cont>cont", "inner>tail",
				"cont!<inner", "cont!<tail",
			},
		},
		{
			name: "labeled-break",
			body: `
outer:
for {
	for cond() {
		if cond() {
			mark("brk")
			break outer
		}
	}
	mark("tail")
}
mark("after")`,
			rels: []string{"brk>after", "brk!>tail", "brk<after", "after!>tail"},
		},
		{
			name: "goto-backward",
			body: `
mark("top")
again:
mark("lbl")
if cond() {
	goto again
}
mark("after")`,
			rels: []string{"lbl>lbl", "lbl<after", "top<lbl"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g, marks := buildGraph(t, tc.body)
			get := func(name string) *cfg.Block {
				switch name {
				case "entry":
					return g.Entry
				case "exit":
					return g.Exit
				}
				b, ok := marks[name]
				if !ok {
					t.Fatalf("no marker %q (have %v)", name, markNames(marks))
				}
				return b
			}
			for _, rel := range tc.rels {
				var a, b string
				var dom, neg bool
				switch {
				case strings.Contains(rel, "!<"):
					parts := strings.SplitN(rel, "!<", 2)
					a, b, dom, neg = parts[0], parts[1], true, true
				case strings.Contains(rel, "!>"):
					parts := strings.SplitN(rel, "!>", 2)
					a, b, dom, neg = parts[0], parts[1], false, true
				case strings.Contains(rel, "<"):
					parts := strings.SplitN(rel, "<", 2)
					a, b, dom = parts[0], parts[1], true
				case strings.Contains(rel, ">"):
					parts := strings.SplitN(rel, ">", 2)
					a, b = parts[0], parts[1]
				default:
					t.Fatalf("bad relation %q", rel)
				}
				ba, bb := get(a), get(b)
				var got bool
				var what string
				if dom {
					got = g.Dominates(ba, bb)
					what = "dominates"
				} else {
					got = g.CanReach(ba, bb)
					what = "reaches"
				}
				if got == neg {
					t.Errorf("%s: %s %s %s = %v, want %v", tc.name, a, what, b, got, !neg)
				}
			}
		})
	}
}

func markNames(m map[string]*cfg.Block) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSelfDominance pins the reflexive and entry properties.
func TestSelfDominance(t *testing.T) {
	g, marks := buildGraph(t, `
mark("a")
if cond() {
	mark("b")
}`)
	for name, b := range marks {
		if !g.Dominates(b, b) {
			t.Errorf("block %q does not dominate itself", name)
		}
		if !g.Dominates(g.Entry, b) {
			t.Errorf("entry does not dominate %q", name)
		}
	}
	if g.Idom(g.Entry) != g.Entry {
		t.Error("entry's idom is not itself")
	}
}

// TestUnreachableAfterReturn pins that statements after a return land in
// a predecessor-less block that dominates nothing.
func TestUnreachableAfterReturn(t *testing.T) {
	g, marks := buildGraph(t, `
mark("live")
return
mark("dead")`)
	dead := marks["dead"]
	if dead == nil {
		t.Fatal("no dead marker block")
	}
	if len(dead.Preds) != 0 {
		t.Errorf("dead block has %d preds, want 0", len(dead.Preds))
	}
	if g.Dominates(dead, g.Exit) {
		t.Error("unreachable block dominates exit")
	}
	if g.Dominates(g.Entry, dead) {
		t.Error("entry dominates an unreachable block")
	}
}

// TestInspectSkipsFuncLit pins that cfg.Inspect visits a literal but not
// its body.
func TestInspectSkipsFuncLit(t *testing.T) {
	src := `package p
func f() {
	g := func() { inner() }
	g()
}
func inner() {}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	sawLit, sawInner := false, false
	cfg.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			sawLit = true
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == "inner" {
			sawInner = true
		}
		return true
	})
	if !sawLit {
		t.Error("Inspect never visited the FuncLit node")
	}
	if sawInner {
		t.Error("Inspect descended into the FuncLit body")
	}
}

func ExampleGraph_Dominates() {
	src := `package p
func f(c bool) {
	if c {
		println("then")
	}
	println("join")
}`
	fset := token.NewFileSet()
	file, _ := parser.ParseFile(fset, "x.go", src, 0)
	g := cfg.New(file.Decls[0].(*ast.FuncDecl).Body)
	fmt.Println(g.Dominates(g.Entry, g.Exit))
	// Output: true
}
