// Package lint is bytebrain's project-specific static-analysis driver:
// a dependency-free (go/parser + go/types only) framework that runs the
// bbvet analyzer suite over the module and fails CI on findings.
//
// The analyzers encode invariants this codebase has paid for in review,
// one per historical bug class:
//
//	durability      — results of WAL appends, fsyncs, os.Rename/Remove
//	                  and (*os.File).Sync/Close on write paths must be
//	                  consumed (the PR 3 unchecked-quarantine class)
//	snapshot        — an atomic.Pointer is Load()ed at most once per
//	                  function and the result threaded through (the PR 2
//	                  double-Load race class)
//	unsafeescape    — unsafe.String/unsafe.Slice are allowlisted to the
//	                  audited netingest decode path (the PR 7 escaping-
//	                  view class)
//	lockblock       — no channel op, net.Conn I/O or Store.Append* call
//	                  while a sync.Mutex/RWMutex is held in the service
//	                  and storage layers
//	metricshygiene  — obs metric names are bb_-prefixed constants,
//	                  latency histograms expose seconds, no name is
//	                  registered twice
//
// On top of those source-order checks sit four path-sensitive analyzers
// built on the internal/lint/cfg + internal/lint/dataflow engine:
//
//	lockbalance     — every Lock is released on every exit path, no
//	                  double-lock or unlock-without-lock
//	goroutineleak   — every go statement's unbounded loop observes a
//	                  termination signal (the PR 7 leaked-listener class)
//	errflow         — a durability error is consumed on every path
//	                  before overwrite or scope exit
//	ackcommit       — a netingest OK ack is dominated by the store
//	                  commit it reports
//
// Deliberate exceptions are suppressed in source with
//
//	//bbvet:ignore <analyzer> <reason>
//
// on the finding's line or the line above. The driver counts every
// suppression and reports the total, so the exception budget stays
// visible; a directive without a reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
	"time"
)

// Analyzer is one bbvet check. Run is invoked once per loaded package,
// in deterministic (sorted import path) order; cross-package state lives
// in Pass.Shared, which the driver threads through every Run of the same
// analyzer. Distinct analyzers may run concurrently (see
// RunAnalyzersParallel), so Run must not mutate anything reachable from
// the packages; Pass.Shared is private to one analyzer and needs no
// locking.
type Analyzer struct {
	// Name is the analyzer identifier used in findings and in
	// //bbvet:ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Packages restricts the analyzer to packages whose import path
	// contains any of these substrings; empty means every package.
	Packages []string
	// Run reports findings for one package via pass.Reportf.
	Run func(pass *Pass) error
}

// AppliesTo reports whether the analyzer covers the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if strings.Contains(pkgPath, p) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Shared is per-analyzer state that survives across packages within
	// one driver run (e.g. the metric-name registry for duplicate
	// detection). Allocated by the driver before the first Run.
	Shared map[string]any

	findings *[]Finding
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported invariant violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Result is the outcome of a driver run.
type Result struct {
	// Findings are the unsuppressed findings, sorted by position.
	Findings []Finding
	// Suppressed counts valid //bbvet:ignore hits per analyzer.
	Suppressed map[string]int
	// BadDirectives are malformed suppressions (missing reason), which
	// are findings in their own right: an exception without a recorded
	// rationale defeats the audit trail.
	BadDirectives []Finding
	// Timings is per-analyzer wall time for the Run sweep (not counting
	// package loading).
	Timings map[string]time.Duration
}

// ignoreDirective is one parsed //bbvet:ignore comment.
type ignoreDirective struct {
	analyzer string // analyzer name or "all"
	reason   string
	pos      token.Position
	used     bool
}

const ignorePrefix = "//bbvet:ignore"

// collectDirectives parses every //bbvet:ignore comment in the package,
// keyed by file and line. A directive suppresses matching findings on
// its own line and on the line directly below (the "comment above the
// statement" idiom).
func collectDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int]*ignoreDirective {
	out := make(map[string]map[int]*ignoreDirective)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				d := &ignoreDirective{
					analyzer: name,
					reason:   strings.TrimSpace(reason),
					pos:      pos,
				}
				byLine, ok := out[pos.Filename]
				if !ok {
					byLine = make(map[int]*ignoreDirective)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = d
			}
		}
	}
	return out
}

// RunAnalyzers executes the analyzer suite over the loaded packages,
// applies //bbvet:ignore suppressions and returns the surviving
// findings. enforceScope=false runs every analyzer on every package
// regardless of its Packages filter (the golden-test harness uses this).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, enforceScope bool) (*Result, error) {
	return RunAnalyzersParallel(pkgs, analyzers, enforceScope, 1)
}

// runAnalyzer sweeps one analyzer over every package in order, with its
// own Shared map and findings slice. The per-analyzer package order is
// the pkgs order (sorted import path), which is what the Shared contract
// promises.
func runAnalyzer(a *Analyzer, pkgs []*Package, enforceScope bool) ([]Finding, time.Duration, error) {
	start := time.Now()
	shared := make(map[string]any)
	var findings []Finding
	for _, pkg := range pkgs {
		if enforceScope && !a.AppliesTo(pkg.PkgPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Shared:   shared,
			findings: &findings,
		}
		if err := a.Run(pass); err != nil {
			return nil, 0, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	return findings, time.Since(start), nil
}

// RunAnalyzersParallel is RunAnalyzers with the analyzers fanned out
// across up to workers goroutines. Each analyzer still sees packages
// sequentially in sorted order (its Shared contract); parallelism is
// between analyzers, whose passes never share mutable state. Output is
// deterministic regardless of workers: findings are merged and sorted
// the same way as the sequential run.
func RunAnalyzersParallel(pkgs []*Package, analyzers []*Analyzer, enforceScope bool, workers int) (*Result, error) {
	if workers < 1 {
		workers = 1
	}
	type sweep struct {
		findings []Finding
		elapsed  time.Duration
		err      error
	}
	sweeps := make([]sweep, len(analyzers))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f, d, err := runAnalyzer(a, pkgs, enforceScope)
			sweeps[i] = sweep{f, d, err}
		}(i, a)
	}
	wg.Wait()

	res := &Result{Suppressed: make(map[string]int), Timings: make(map[string]time.Duration, len(analyzers))}
	var findings []Finding
	for i, a := range analyzers {
		if sweeps[i].err != nil {
			return nil, sweeps[i].err
		}
		findings = append(findings, sweeps[i].findings...)
		res.Timings[a.Name] = sweeps[i].elapsed
	}

	// Apply suppressions across the union of every package's directives
	// (findings always point into the package that produced them, so a
	// directive can only match its own file anyway).
	merged := make(map[string]map[int]*ignoreDirective)
	for _, pkg := range pkgs {
		for file, byLine := range collectDirectives(pkg.Fset, pkg.Files) {
			if merged[file] == nil {
				merged[file] = byLine
				continue
			}
			for line, d := range byLine {
				merged[file][line] = d
			}
		}
	}
	for _, f := range findings {
		if d := matchDirective(merged, f); d != nil {
			if d.reason == "" {
				if !d.used {
					d.used = true
					res.BadDirectives = append(res.BadDirectives, Finding{
						Analyzer: "bbvet",
						Pos:      d.pos,
						Message:  fmt.Sprintf("bbvet:ignore %s directive has no reason; suppressions must say why", d.analyzer),
					})
				}
				res.Findings = append(res.Findings, f)
				continue
			}
			d.used = true
			res.Suppressed[f.Analyzer]++
			continue
		}
		res.Findings = append(res.Findings, f)
	}
	sortFindings(res.Findings)
	sortFindings(res.BadDirectives)
	return res, nil
}

// matchDirective finds a directive covering the finding: same line or
// the line above, analyzer name matching (or "all").
func matchDirective(m map[string]map[int]*ignoreDirective, f Finding) *ignoreDirective {
	byLine := m[f.Pos.Filename]
	if byLine == nil {
		return nil
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if d, ok := byLine[line]; ok && (d.analyzer == f.Analyzer || d.analyzer == "all") {
			return d
		}
	}
	return nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
