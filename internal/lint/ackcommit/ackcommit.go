// Package ackcommit implements the bbvet ack-ordering analyzer: in
// internal/netingest, a success acknowledgement (any call passing
// StatusOK) must be dominated by a commit — an Ingest/Append/flush call
// that actually hands the frame's lines to the store. An OK ack the
// client can observe before the data is committed is a durability lie:
// the client drops its copy, the server crashes, the lines are gone.
//
// The check is structural, on the function's CFG: for each OK-ack call
// site there must exist a commit call whose basic block dominates the
// ack's block (or which precedes the ack inside the same block). Since
// every path to the ack then passes through the commit, the ack cannot
// race ahead of it within the function.
//
// "Commit" is matched by callee name — Ingest, Append* (except the
// wire-codec helper AppendAck), flush/Flush/commit/Commit — plus any
// package-local function or closure variable whose body transitively
// makes such a call (so serveRaw's `flush := func() error { ...
// s.cfg.Ingest(...) ... }` counts at its call sites). Error acks
// (StatusErr and friends) are exempt: reporting failure early is fine.
package ackcommit

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bytebrain/internal/lint"
	"bytebrain/internal/lint/cfg"
)

// Analyzer is the ack-ordering analyzer.
var Analyzer = &lint.Analyzer{
	Name:     "ackcommit",
	Doc:      "an OK ack must be dominated by the store commit it reports",
	Packages: []string{"internal/netingest"},
	Run:      run,
}

func run(pass *lint.Pass) error {
	committing := committingObjects(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body, committing)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Body, committing)
			}
			return true
		})
	}
	return nil
}

// site is a call position paired with its basic block.
type site struct {
	pos   token.Pos
	block *cfg.Block
}

func checkBody(pass *lint.Pass, body *ast.BlockStmt, committing map[types.Object]bool) {
	g := cfg.New(body)
	var acks, commits []site
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			cfg.Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isCommitCall(pass, call, committing) {
					commits = append(commits, site{call.Pos(), b})
				}
				if isOKAck(pass, call) {
					acks = append(acks, site{call.Pos(), b})
				}
				return true
			})
		}
	}
	if len(acks) == 0 {
		return
	}
	g.Dominators()
	for _, a := range acks {
		ok := false
		for _, c := range commits {
			if c.block == a.block {
				if c.pos < a.pos {
					ok = true
					break
				}
				continue
			}
			if g.Dominates(c.block, a.block) {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(a.pos, "OK ack is not dominated by a store commit (Ingest/Append/flush); a client could observe success for data the store never accepted")
		}
	}
}

// isOKAck reports whether call passes StatusOK as an argument.
func isOKAck(pass *lint.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		var id *ast.Ident
		switch a := arg.(type) {
		case *ast.Ident:
			id = a
		case *ast.SelectorExpr:
			id = a.Sel
		}
		if id != nil && id.Name == "StatusOK" {
			return true
		}
	}
	return false
}

// isCommitName matches names that hand data to the store.
func isCommitName(name string) bool {
	switch name {
	case "Ingest", "flush", "Flush", "commit", "Commit":
		return true
	}
	// Append* is a commit family (AppendFrame, appendBatch, ...) except
	// the wire-codec helper AppendAck, which encodes the ack itself.
	return strings.HasPrefix(name, "Append") && name != "AppendAck"
}

// isCommitCall reports whether call commits data: by callee name, or by
// resolving to a package-local committing function/closure.
func isCommitCall(pass *lint.Pass, call *ast.CallExpr, committing map[types.Object]bool) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if isCommitName(fun.Name) {
			return true
		}
		return committing[pass.Info.Uses[fun]]
	case *ast.SelectorExpr:
		if isCommitName(fun.Sel.Name) {
			return true
		}
		if s, ok := pass.Info.Selections[fun]; ok {
			return committing[s.Obj()]
		}
		return committing[pass.Info.Uses[fun.Sel]]
	}
	return false
}

// committingObjects computes, to a fixpoint, the package-local function
// declarations and closure-bound variables whose bodies (transitively)
// make a commit call.
func committingObjects(pass *lint.Pass) map[types.Object]bool {
	// Candidate bodies: FuncDecls by their object, and `v := func(){...}`
	// closure bindings by the variable's object.
	bodies := map[types.Object]*ast.BlockStmt{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					if obj := pass.Info.Defs[n.Name]; obj != nil {
						bodies[obj] = n.Body
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj != nil {
						bodies[obj] = lit.Body
					}
				}
			}
			return true
		})
	}
	committing := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for obj, body := range bodies {
			if committing[obj] {
				continue
			}
			found := false
			ast.Inspect(body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok && isCommitCall(pass, call, committing) {
					found = true
				}
				return true
			})
			if found {
				committing[obj] = true
				changed = true
			}
		}
	}
	return committing
}
