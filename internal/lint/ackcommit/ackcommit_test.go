package ackcommit_test

import (
	"path/filepath"
	"testing"

	"bytebrain/internal/lint/ackcommit"
	"bytebrain/internal/lint/linttest"
)

func TestGoldenFindings(t *testing.T) {
	linttest.Run(t, ackcommit.Analyzer, filepath.Join("testdata", "src", "ackfix"))
}
