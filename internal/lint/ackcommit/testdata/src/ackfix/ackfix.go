// Fixture for the ack-ordering analyzer: a netingest-shaped package
// where OK acks must be dominated by a store commit. The bad shapes are
// mutations of the real frame worker that acknowledge success before
// (or without) the ingest call; the good shapes mirror the framed and
// raw paths of the real server, including the commit-through-closure
// idiom.
package ackfix

const (
	StatusOK  byte = 0
	StatusErr byte = 1
)

type frame struct {
	seq   uint32
	topic string
	lines []string
}

type Config struct {
	Ingest func(topic string, lines []string) error
}

type conn struct{}

func (c *conn) ack(seq uint32, status byte) error { return nil }

// frameWorker is the ack-before-commit mutation: the client is told the
// frame is durable before Ingest has run. A crash between the two loses
// data the client already dropped.
func frameWorker(cfg Config, c *conn, frames <-chan frame) {
	for f := range frames {
		c.ack(f.seq, StatusOK) // want "OK ack is not dominated by a store commit"
		if err := cfg.Ingest(f.topic, f.lines); err != nil {
			c.ack(f.seq, StatusErr)
		}
	}
}

// ackWithoutCommit never commits at all on the acked path.
func ackWithoutCommit(cfg Config, c *conn, f frame) {
	if len(f.lines) == 0 {
		c.ack(f.seq, StatusOK) // want "OK ack is not dominated by a store commit"
		return
	}
	if err := cfg.Ingest(f.topic, f.lines); err != nil {
		c.ack(f.seq, StatusErr)
		return
	}
	c.ack(f.seq, StatusOK)
}

// frameWorkerGood is the real ordering: Ingest dominates the OK ack;
// the error ack on the failure branch is exempt.
func frameWorkerGood(cfg Config, c *conn, frames <-chan frame) {
	for f := range frames {
		if err := cfg.Ingest(f.topic, f.lines); err != nil {
			c.ack(f.seq, StatusErr)
			continue
		}
		c.ack(f.seq, StatusOK)
	}
}

// rawGood commits through a closure variable, the serveRaw shape: the
// fixpoint pre-pass marks push as committing because its body calls
// cfg.Ingest.
func rawGood(cfg Config, c *conn, batch []string) {
	push := func() error { return cfg.Ingest("topic", batch) }
	if err := push(); err != nil {
		c.ack(0, StatusErr)
		return
	}
	c.ack(uint32(len(batch)), StatusOK)
}
