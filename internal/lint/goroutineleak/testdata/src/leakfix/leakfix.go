// Fixture for the goroutine-termination analyzer. The bad shapes
// reintroduce the PR 7 leaked-listener race — an accept loop that
// blanks the Accept error, so Close() can never stop it — plus a bare
// busy-spin. The good shapes are every shutdown idiom the real tree
// uses: checked accept/read errors, range over a channel, select on a
// done channel, a context, and an atomic flag.
package leakfix

import (
	"bufio"
	"context"
	"net"
	"sync/atomic"
)

type Server struct {
	ln     net.Listener
	ch     chan string
	doneCh chan struct{}
	stop   atomic.Bool
	n      int
}

// Start reintroduces the PR 7 bug: acceptLoop discards the Accept
// error, so a closed listener just yields an error forever and the
// goroutine (and the socket it pins) never exits.
func (s *Server) Start() {
	go s.acceptLoop() // want "goroutine runs an unbounded loop but never observes a termination signal"
}

func (s *Server) acceptLoop() {
	for {
		conn, _ := s.ln.Accept()
		if conn != nil {
			conn.Close()
		}
	}
}

// spin is the minimal leak: an infinite loop with no exit condition at
// all.
func (s *Server) spin() {
	go func() { // want "goroutine runs an unbounded loop but never observes a termination signal"
		for {
			s.n++
		}
	}()
}

// StartFixed is the corrected accept loop: the error is bound and
// checked, so Close() unblocks Accept and the goroutine returns.
func (s *Server) StartFixed() {
	go s.acceptFixed()
}

func (s *Server) acceptFixed() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

// handle reads until the scanner fails (EOF, close kick, deadline);
// the Scan result in the loop condition is the termination signal.
func (s *Server) handle(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		s.ch <- sc.Text()
	}
	conn.Close()
}

// drain ends when the channel is closed: range over a channel is its
// own termination signal.
func (s *Server) drain() {
	go func() {
		for line := range s.ch {
			_ = line
		}
	}()
}

// selectLoop observes the done channel every iteration.
func (s *Server) selectLoop() {
	go func() {
		for {
			select {
			case <-s.doneCh:
				return
			case line := <-s.ch:
				_ = line
			}
		}
	}()
}

// ctxLoop polls the context; cancel stops it.
func (s *Server) ctxLoop(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			s.n++
		}
	}()
}

// flagLoop checks an atomic flag toggled by Close.
func (s *Server) flagLoop() {
	go func() {
		for {
			if s.stop.Load() {
				return
			}
			s.n++
		}
	}()
}

// bounded loops need no signal: the iteration count is the bound.
func (s *Server) warmup() {
	go func() {
		for i := 0; i < 64; i++ {
			s.n += i
		}
	}()
}
