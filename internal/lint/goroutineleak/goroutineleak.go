// Package goroutineleak implements the bbvet goroutine-termination
// analyzer: in internal/service, internal/logstore and
// internal/netingest, every goroutine started with `go` that runs an
// unbounded loop must observe a termination signal somewhere in its
// (transitive, same-package) body. This encodes the PR 7 leaked-
// listener class: an accept/serve loop that nothing can ever stop keeps
// a socket, a buffer pool and a connection map alive after Close.
//
// A goroutine body is the called function literal, or the package-local
// function/method a `go f(...)` statement names; the scan follows
// static same-package calls (and nested literals, which run inside the
// goroutine or on goroutines it spawns) with a visited set.
//
// "Unbounded loop" means a `for`/`for cond` loop with no iteration
// bound the analyzer can see: a three-clause for or a range over a
// slice/map/array/integer is bounded; `for {}` and `for someCond()`
// are not. A range over a channel is unbounded but is its own
// termination signal (it ends when the channel closes).
//
// Termination signals, any one of which clears the goroutine:
//
//   - a channel receive, a range over a channel, or a select statement
//     (a closed channel unblocks all three);
//   - ctx.Done() / ctx.Err() on a context.Context;
//   - a Load on a sync/atomic value (the Close-toggled-flag idiom);
//   - a blocking accept/read whose error or ok result is actually
//     consumed: Accept/Read*/Scan on a net/bufio/io value (or
//     io.ReadFull and friends) with the error result bound to a
//     non-blank name, or a bool Scan used as a loop/if condition.
//     Close kicks these calls loose (closed listener, read deadline),
//     which is exactly how the netingest reader goroutines wind down —
//     but only if the code looks at the result, which is what the PR 7
//     fixture gets wrong.
package goroutineleak

import (
	"go/ast"
	"go/types"
	"strings"

	"bytebrain/internal/lint"
)

// Analyzer is the goroutine-termination analyzer.
var Analyzer = &lint.Analyzer{
	Name:     "goroutineleak",
	Doc:      "every go statement's unbounded loop must observe a termination signal",
	Packages: []string{"internal/service", "internal/logstore", "internal/netingest"},
	Run:      run,
}

func run(pass *lint.Pass) error {
	// Index the package's function declarations by object so `go s.f()`
	// resolves to f's body.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, decls, gs)
			if body == nil {
				return true // external or dynamic callee: nothing to prove
			}
			sc := &scanner{pass: pass, decls: decls, seen: map[*ast.BlockStmt]bool{}}
			sc.scan(body)
			if sc.unbounded && !sc.signal {
				pass.Reportf(gs.Pos(), "goroutine runs an unbounded loop but never observes a termination signal (channel close, context, atomic flag, or checked accept/read error); it cannot be shut down")
			}
			return true
		})
	}
	return nil
}

// goBody resolves the body a go statement runs: a literal's body, or
// the declaration of a package-local function/method.
func goBody(pass *lint.Pass, decls map[types.Object]*ast.FuncDecl, gs *ast.GoStmt) *ast.BlockStmt {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd, ok := decls[pass.Info.Uses[fun]]; ok {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[fun]; ok {
			if fd, ok := decls[s.Obj()]; ok {
				return fd.Body
			}
		}
		if fd, ok := decls[pass.Info.Uses[fun.Sel]]; ok {
			return fd.Body
		}
	}
	return nil
}

// scanner walks a goroutine's transitive body recording whether it has
// an unbounded loop and whether it observes a termination signal.
type scanner struct {
	pass  *lint.Pass
	decls map[types.Object]*ast.FuncDecl
	seen  map[*ast.BlockStmt]bool

	unbounded bool
	signal    bool
}

func (sc *scanner) scan(body *ast.BlockStmt) {
	if sc.seen[body] {
		return
	}
	sc.seen[body] = true
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			// Bounded only when all three clauses spell out an induction:
			// init+cond+post is the canonical counted loop. Everything
			// else is assumed unbounded.
			if n.Init == nil || n.Cond == nil || n.Post == nil {
				sc.unbounded = true
			}
			if n.Cond != nil && sc.checkedIOCond(n.Cond) {
				sc.signal = true
			}
		case *ast.RangeStmt:
			if sc.isChan(n.X) {
				sc.unbounded = true
				sc.signal = true // ends when the channel closes
			}
		case *ast.SelectStmt:
			sc.signal = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				sc.signal = true
			}
		case *ast.IfStmt:
			if sc.checkedIOCond(n.Cond) {
				sc.signal = true
			}
		case *ast.AssignStmt:
			if sc.checkedIOAssign(n) {
				sc.signal = true
			}
		case *ast.CallExpr:
			sc.call(n)
		}
		return true
	})
}

// call classifies one call: context/atomic signals, and recursion into
// same-package callees.
func (sc *scanner) call(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fd, ok := sc.decls[sc.pass.Info.Uses[fun]]; ok {
			sc.scan(fd.Body)
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if recv := sc.typeOf(fun.X); recv != nil {
			switch {
			case (name == "Done" || name == "Err") && typeInPkg(recv, "context"):
				sc.signal = true
				return
			case name == "Load" && typeInPkg(recv, "sync/atomic"):
				sc.signal = true
				return
			}
		}
		// atomic.LoadInt32(&x) style package calls.
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := sc.pass.Info.Uses[id].(*types.PkgName); ok {
				if pkg.Imported().Path() == "sync/atomic" && strings.HasPrefix(name, "Load") {
					sc.signal = true
					return
				}
			}
		}
		if s, ok := sc.pass.Info.Selections[fun]; ok {
			if fd, ok := sc.decls[s.Obj()]; ok {
				sc.scan(fd.Body)
			}
		}
	}
}

// checkedIOAssign reports whether n binds the error result of a
// blocking accept/read call to a non-blank name.
func (sc *scanner) checkedIOAssign(n *ast.AssignStmt) bool {
	if len(n.Rhs) != 1 {
		return false
	}
	call, ok := n.Rhs[0].(*ast.CallExpr)
	if !ok || !sc.isBlockingIO(call) {
		return false
	}
	tv, ok := sc.pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	// Find the error component and require its LHS to be non-blank.
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len() && i < len(n.Lhs); i++ {
			if isErrorType(tup.At(i).Type()) {
				id, ok := n.Lhs[i].(*ast.Ident)
				return ok && id.Name != "_"
			}
		}
		return false
	}
	if isErrorType(tv.Type) && len(n.Lhs) == 1 {
		id, ok := n.Lhs[0].(*ast.Ident)
		return ok && id.Name != "_"
	}
	return false
}

// checkedIOCond reports whether cond consumes a blocking call's result
// directly (for sc.Scan() { ... }, if err := conn.Read(..); err != nil).
func (sc *scanner) checkedIOCond(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && sc.isBlockingIO(call) {
			found = true
		}
		return true
	})
	return found
}

// blockingIONames are the method names whose return the runtime uses to
// signal a closed listener/conn/stream.
var blockingIONames = map[string]bool{
	"Accept": true, "Read": true, "ReadFull": true, "ReadByte": true,
	"ReadString": true, "ReadBytes": true, "ReadRune": true,
	"ReadFrom": true, "ReadAll": true, "Scan": true, "Copy": true,
}

// isBlockingIO reports whether call is a blocking accept/read on a
// net/bufio/io/os value (or an io package function).
func (sc *scanner) isBlockingIO(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !blockingIONames[sel.Sel.Name] {
		return false
	}
	// io.ReadFull / io.Copy package functions.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := sc.pass.Info.Uses[id].(*types.PkgName); ok {
			p := pkg.Imported().Path()
			return p == "io" || p == "bufio" || p == "net"
		}
	}
	recv := sc.typeOf(sel.X)
	if recv == nil {
		return false
	}
	switch {
	case typeInPkg(recv, "net"), typeInPkg(recv, "bufio"), typeInPkg(recv, "io"), typeInPkg(recv, "os"):
		return true
	}
	// Interfaces embedding io.Reader etc. declared locally still
	// terminate on close; accept any interface with a matching method
	// whose signature returns an error.
	if _, ok := recv.Underlying().(*types.Interface); ok {
		return true
	}
	return false
}

func (sc *scanner) typeOf(e ast.Expr) types.Type {
	tv, ok := sc.pass.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

func (sc *scanner) isChan(e ast.Expr) bool {
	t := sc.typeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// typeInPkg reports whether t (or its pointee) is a named type declared
// in the package with the given path.
func typeInPkg(t types.Type, path string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}
