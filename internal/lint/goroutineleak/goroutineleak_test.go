package goroutineleak_test

import (
	"path/filepath"
	"testing"

	"bytebrain/internal/lint/goroutineleak"
	"bytebrain/internal/lint/linttest"
)

func TestGoldenFindings(t *testing.T) {
	linttest.Run(t, goroutineleak.Analyzer, filepath.Join("testdata", "src", "leakfix"))
}
