package errflow_test

import (
	"path/filepath"
	"testing"

	"bytebrain/internal/lint/errflow"
	"bytebrain/internal/lint/linttest"
)

func TestGoldenFindings(t *testing.T) {
	linttest.Run(t, errflow.Analyzer, filepath.Join("testdata", "src", "errfix"))
}
