// Package errflow implements the bbvet error-flow analyzer: on the
// storage and network write paths (internal/logstore, internal/segment,
// internal/netingest), an error ASSIGNED from a durability-relevant
// call — a WAL write, an fsync, a rename/remove, an Ingest commit —
// must be consumed on EVERY path before it is overwritten or falls out
// of scope.
//
// This is the dataflow upgrade of the durability analyzer: durability
// catches results that are discarded outright (`f.Sync()`, `_ =
// f.Sync()`); errflow catches the sneakier shape where the error is
// bound to a name and then lost on one path —
//
//	err := w.flush()
//	if fast {
//		return nil        // flush error vanishes on this path
//	}
//	return err
//
// or clobbered before anyone looks at it —
//
//	err := os.Rename(tmp, final)
//	err = dir.Sync()          // rename failure overwritten unchecked
//
// A "use" is any read of the variable: a comparison, a return, an
// argument (errors.Join, fmt.Errorf, an ack helper), a consuming
// assignment. The analysis is a per-definition may-reach dataflow over
// the function CFG (internal/lint/cfg + internal/lint/dataflow):
// definition facts are generated at the assignment, killed by any use,
// and reported if they survive to a redefinition (overwrite) or to the
// function exit (dropped). Variables captured by a closure or having
// their address taken are exempt — the closure may consume them later.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"bytebrain/internal/lint"
	"bytebrain/internal/lint/cfg"
	"bytebrain/internal/lint/dataflow"
)

// Analyzer is the error-flow analyzer.
var Analyzer = &lint.Analyzer{
	Name:     "errflow",
	Doc:      "a durability-relevant error must be consumed on every path before overwrite or scope exit",
	Packages: []string{"internal/logstore", "internal/segment", "internal/netingest", "internal/fsx"},
	Run:      run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body, fn.Type)
				}
			case *ast.FuncLit:
				checkBody(pass, fn.Body, fn.Type)
			}
			return true
		})
	}
	return nil
}

// defFact is one tracked definition: an error variable assigned from a
// durability-relevant call.
type defFact struct {
	obj   types.Object
	pos   token.Pos
	label string
}

func checkBody(pass *lint.Pass, body *ast.BlockStmt, ftype *ast.FuncType) {
	g := cfg.New(body)

	// Variables referenced inside nested closures or address-taken are
	// exempt: their consumption may happen outside this CFG.
	exempt := exemptObjects(pass, body)

	// Named results: a bare `return` implicitly reads them.
	named := namedResults(pass, ftype)

	// Collect definition facts.
	var defs []defFact
	defIndex := map[token.Pos]int{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			cfg.Inspect(n, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok {
					return true
				}
				obj, label, ok := durabilityDef(pass, as)
				if !ok || exempt[obj] {
					return true
				}
				defIndex[as.Pos()] = len(defs)
				defs = append(defs, defFact{obj: obj, pos: as.Pos(), label: label})
				return true
			})
		}
	}
	if len(defs) == 0 {
		return
	}

	factsOf := func(s dataflow.BitSet, obj types.Object) []int {
		var out []int
		for i, d := range defs {
			if d.obj == obj && s.Has(i) {
				out = append(out, i)
			}
		}
		return out
	}

	apply := func(b *cfg.Block, in dataflow.BitSet, report bool) dataflow.BitSet {
		s := in.Copy()
		for _, n := range b.Nodes {
			cfg.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.AssignStmt:
					// RHS reads happen before the LHS write.
					for _, r := range m.Rhs {
						useIdents(pass, r, defs, &s)
					}
					// Index/selector expressions on the left still read
					// their bases; only the plain ident LHS is a write.
					for _, l := range m.Lhs {
						if _, ok := l.(*ast.Ident); !ok {
							useIdents(pass, l, defs, &s)
						}
					}
					for _, l := range m.Lhs {
						id, ok := l.(*ast.Ident)
						if !ok || id.Name == "_" {
							continue
						}
						obj := pass.Info.Uses[id]
						if obj == nil {
							continue // := definition of a fresh object
						}
						if live := factsOf(s, obj); len(live) > 0 {
							if report {
								for _, i := range live {
									pass.Reportf(m.Pos(), "error from %s (line %d) may be overwritten before it is checked",
										defs[i].label, pass.Fset.Position(defs[i].pos).Line)
								}
							}
							for _, i := range live {
								s.Clear(i)
							}
						}
					}
					// Finally, generate the fact if this assignment IS a
					// tracked definition.
					if i, ok := defIndex[m.Pos()]; ok {
						s.Set(i)
					}
					return false // children handled above
				case *ast.ReturnStmt:
					if len(m.Results) == 0 {
						// Bare return reads the named results.
						for obj := range named {
							for _, i := range factsOf(s, obj) {
								s.Clear(i)
							}
						}
					}
					return true
				case *ast.Ident:
					useIdent(pass, m, defs, &s)
					return true
				}
				return true
			})
		}
		return s
	}

	res := dataflow.Forward(g, len(defs), dataflow.Union, dataflow.NewBitSet(len(defs)),
		func(b *cfg.Block, in dataflow.BitSet) dataflow.BitSet { return apply(b, in, false) })

	// Report overwrites on the fixpoint.
	for _, b := range g.Blocks {
		if b != g.Entry && len(b.Preds) == 0 {
			continue
		}
		apply(b, res.In[b.Index], true)
	}
	// Report definitions that may reach the exit unread.
	for i, d := range defs {
		if res.In[g.Exit.Index].Has(i) {
			pass.Reportf(d.pos, "error from %s is dropped on at least one path to return; check it or hand it on (return/errors.Join/ack)", d.label)
		}
	}
}

// useIdents kills facts for every tracked identifier read inside e.
func useIdents(pass *lint.Pass, e ast.Expr, defs []defFact, s *dataflow.BitSet) {
	cfg.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			useIdent(pass, id, defs, s)
		}
		return true
	})
}

func useIdent(pass *lint.Pass, id *ast.Ident, defs []defFact, s *dataflow.BitSet) {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return
	}
	for i, d := range defs {
		if d.obj == obj {
			s.Clear(i)
		}
	}
}

// durabilityDef reports whether as assigns the error result of a
// durability-relevant call to a plain identifier, returning the
// variable's object and a label for messages.
func durabilityDef(pass *lint.Pass, as *ast.AssignStmt) (types.Object, string, bool) {
	if len(as.Rhs) != 1 {
		return nil, "", false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	label, ok := durabilityCall(pass, call)
	if !ok {
		return nil, "", false
	}
	// Find the error component of the call's type and its LHS ident.
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return nil, "", false
	}
	errIdx := -1
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				errIdx = i
			}
		}
	} else if isErrorType(tv.Type) {
		errIdx = 0
	}
	if errIdx < 0 || errIdx >= len(as.Lhs) {
		return nil, "", false
	}
	id, ok := as.Lhs[errIdx].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, "", false
	}
	var obj types.Object
	if as.Tok == token.DEFINE {
		obj = pass.Info.Defs[id]
	} else {
		obj = pass.Info.Uses[id]
	}
	if obj == nil {
		return nil, "", false
	}
	return obj, label, true
}

// durabilityCall reports whether call is durability-relevant: the same
// target set as the durability analyzer, plus the netingest Ingest
// commit hook.
func durabilityCall(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	// os.Rename / Remove / RemoveAll / Truncate.
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			if obj.Imported().Path() == "os" {
				switch name {
				case "Rename", "Remove", "RemoveAll", "Truncate":
					return "os." + name, true
				}
			}
			return "", false
		}
	}
	recv := typeOf(pass, sel.X)
	if recv == nil {
		return "", false
	}
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		// The netingest commit hook: a func-typed field named Ingest.
		if name == "Ingest" {
			if _, ok := recv.Underlying().(*types.Struct); ok {
				return types.ExprString(sel.X) + ".Ingest", true
			}
		}
		return "", false
	}
	obj := named.Obj()
	label := types.ExprString(sel.X) + "." + name
	// (*os.File).Sync / Close.
	if obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File" {
		if name == "Sync" || name == "Close" {
			return label, true
		}
		return "", false
	}
	// The fsx filesystem seam: mutating FS methods and write-side File
	// methods, matched by package name so fixtures with a stub fsx
	// package exercise the same paths as the real internal/fsx.
	if obj.Pkg() != nil && obj.Pkg().Name() == "fsx" {
		switch obj.Name() {
		case "FS":
			switch name {
			case "Rename", "Remove", "Truncate", "MkdirAll", "SyncDir", "WriteFile":
				return label, true
			}
		case "File":
			switch name {
			case "Write", "Sync", "Close":
				return label, true
			}
		}
		return "", false
	}
	// Error-returning methods on the package's WAL types, and the
	// Config.Ingest commit hook (netingest).
	if obj.Pkg() == pass.Pkg {
		switch obj.Name() {
		case "walWriter", "walSink":
			return label, true
		case "Config":
			if name == "Ingest" {
				return label, true
			}
		}
	}
	return "", false
}

// exemptObjects returns objects referenced inside nested function
// literals or with their address taken anywhere in body.
func exemptObjects(pass *lint.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
			return true
		})
	}
	depth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if depth == 0 {
				mark(n.Body)
			}
			depth++
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return out
}

// namedResults returns the objects of the function's named results.
func namedResults(pass *lint.Pass, ftype *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ftype == nil || ftype.Results == nil {
		return out
	}
	for _, f := range ftype.Results.List {
		for _, name := range f.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func typeOf(pass *lint.Pass, e ast.Expr) types.Type {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}
