// Fixture for the fsx seam: errors from the filesystem interface bound
// to a variable and then lost flow exactly like their os counterparts.
package errfix

import "fsx"

// fsxDropOnFastPath loses the rename error when fast is true.
func fsxDropOnFastPath(fsys fsx.FS, tmp, final string, fast bool) error {
	err := fsys.Rename(tmp, final) // want "error from fsys.Rename is dropped on at least one path to return"
	if fast {
		return nil
	}
	return err
}

// fsxClobbered overwrites the sync error before anything reads it.
func fsxClobbered(fsys fsx.FS, f fsx.File, dir string) error {
	err := f.Sync()
	err = fsys.SyncDir(dir) // want "error from f.Sync" "may be overwritten before it is checked"
	return err
}

// fsxChecked is the canonical good shape.
func fsxChecked(fsys fsx.FS, f fsx.File, dir string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
