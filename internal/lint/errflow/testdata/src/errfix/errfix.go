// Fixture for the error-flow analyzer: durability errors bound to a
// variable and then lost. The bad shapes drop the error on one path or
// clobber it before any read; the good shapes check it, return it, join
// it, or hand it to a closure.
package errfix

import (
	"errors"
	"os"
)

// walWriter mirrors the storage WAL writer: its error results are
// durability-relevant by type name.
type walWriter struct {
	f *os.File
}

func (w *walWriter) flush() error                 { return w.f.Sync() }
func (w *walWriter) append(s string) (int, error) { return len(s), nil }

// dropOnFastPath loses the flush error when fast is true: the early
// return never reads err.
func dropOnFastPath(w *walWriter, fast bool) error {
	err := w.flush() // want "error from w.flush is dropped on at least one path to return"
	if fast {
		return nil
	}
	return err
}

// clobbered overwrites the rename error before anything reads it, so a
// failed rename is silently replaced by the (likely nil) sync error.
func clobbered(dir *os.File, tmp, final string) error {
	err := os.Rename(tmp, final)
	err = dir.Sync() // want "error from os.Rename" "may be overwritten before it is checked"
	return err
}

// checkedInline is the canonical good shape.
func checkedInline(w *walWriter) error {
	if err := w.flush(); err != nil {
		return err
	}
	return nil
}

// joined consumes both errors through errors.Join.
func joined(w *walWriter, f *os.File) error {
	werr := w.flush()
	serr := f.Sync()
	return errors.Join(werr, serr)
}

// tupleResult tracks the error component of a multi-result call.
func tupleResult(w *walWriter, s string) (int, error) {
	n, err := w.append(s)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// namedResult reads the named result implicitly through a bare return.
func namedResult(w *walWriter) (err error) {
	err = w.flush()
	return
}

// captured is exempt: the closure may consume err after this function
// has built it.
func captured(w *walWriter) func() error {
	var err error
	later := func() error { return err }
	err = w.flush()
	return later
}

// reassignedAfterCheck is fine: every definition is read before the
// next one lands.
func reassignedAfterCheck(w *walWriter, f *os.File) error {
	err := w.flush()
	if err != nil {
		return err
	}
	err = f.Sync()
	return err
}
