// Stub of the internal/fsx seam for analyzer fixtures: just enough of
// the FS/File method sets for the durability and errflow analyzers to
// resolve receiver types. Matching is by package NAME, so this stub
// exercises the same analyzer paths as the real internal/fsx.
package fsx

import "io/fs"

// File is the write-side file surface.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the filesystem seam.
type FS interface {
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	MkdirAll(path string, perm fs.FileMode) error
	SyncDir(dir string) error
	WriteFile(name string, data []byte, perm fs.FileMode) error
}
