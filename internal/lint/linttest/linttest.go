// Package linttest runs a bbvet analyzer over a testdata fixture
// package and checks its findings against // want "substr" comments,
// the golden-findings idiom the analyzer tests share.
//
// A fixture lives in testdata/src/<name>/ and is type-checked as one
// package. Imports are resolved first against sibling fixture
// directories under the same testdata/src (so fixtures can share a stub
// dependency, e.g. a fake obs package), then against the standard
// library.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"bytebrain/internal/lint"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string // base name
	line    int
	substr  string
	matched bool
}

// Run type-checks the fixture package at dir (a testdata/src/<name>
// directory), runs the analyzer on it, and fails t on any mismatch
// between findings and // want comments. It returns the driver result
// so callers can additionally assert on suppression counts.
func Run(t *testing.T, a *lint.Analyzer, dir string) *lint.Result {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	res, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a}, false)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, pkg)
	for _, f := range append(res.Findings, res.BadDirectives...) {
		base := filepath.Base(f.Pos.Filename)
		ok := false
		for _, w := range wants {
			if w.file == base && w.line == f.Pos.Line && strings.Contains(f.Message, w.substr) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding containing %q, got none", w.file, w.line, w.substr)
		}
	}
	return res
}

func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, q := range quoted {
					wants = append(wants, &expectation{
						file:   filepath.Base(pos.Filename),
						line:   pos.Line,
						substr: strings.ReplaceAll(q[1], `\"`, `"`),
					})
				}
			}
		}
	}
	return wants
}

// loadFixture parses and type-checks one fixture directory.
func loadFixture(dir string) (*lint.Package, error) {
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		fset:    fset,
		srcRoot: filepath.Dir(dir),
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:   map[string]*types.Package{},
	}
	files, info, tpkg, err := imp.check(filepath.Base(dir), dir)
	if err != nil {
		return nil, err
	}
	return &lint.Package{
		PkgPath: filepath.Base(dir),
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// fixtureImporter resolves imports against sibling fixture dirs first,
// then the standard library.
type fixtureImporter struct {
	fset    *token.FileSet
	srcRoot string // the testdata/src directory
	std     types.ImporterFrom
	cache   map[string]*types.Package
}

func (fi *fixtureImporter) check(pkgPath, dir string) ([]*ast.File, *types.Info, *types.Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: fi}
	tpkg, err := conf.Check(pkgPath, fi.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, info, tpkg, nil
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := fi.cache[path]; ok {
		return p, nil
	}
	if dir := filepath.Join(fi.srcRoot, filepath.FromSlash(path)); isDir(dir) {
		_, _, tpkg, err := fi.check(path, dir)
		if err != nil {
			return nil, err
		}
		fi.cache[path] = tpkg
		return tpkg, nil
	}
	return fi.std.ImportFrom(path, fi.srcRoot, 0)
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}
