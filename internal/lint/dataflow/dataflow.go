// Package dataflow is a small forward-dataflow framework over the
// internal/lint/cfg graphs: facts are bits in a fixed-size set, blocks
// get a transfer function, and a worklist iterates to fixpoint under a
// union (may) or intersection (must) join. It is deliberately minimal —
// gen/kill style lattices cover every bbvet analyzer shipped so far —
// and, like the rest of internal/lint, has no dependencies beyond the
// standard library.
package dataflow

import (
	"math/bits"

	"bytebrain/internal/lint/cfg"
)

// BitSet is a fixed-capacity set of fact indices.
type BitSet []uint64

// NewBitSet returns an empty set with capacity for n facts.
func NewBitSet(n int) BitSet {
	return make(BitSet, (n+63)/64)
}

// Has reports whether fact i is in the set.
func (s BitSet) Has(i int) bool {
	return s[i/64]&(1<<(uint(i)%64)) != 0
}

// Set adds fact i.
func (s BitSet) Set(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear removes fact i.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// Copy returns an independent copy of the set.
func (s BitSet) Copy() BitSet {
	out := make(BitSet, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two same-capacity sets hold the same facts.
func (s BitSet) Equal(o BitSet) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// UnionWith adds every fact in o, reporting whether s changed.
func (s BitSet) UnionWith(o BitSet) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// IntersectWith drops facts not in o, reporting whether s changed.
func (s BitSet) IntersectWith(o BitSet) bool {
	changed := false
	for i := range s {
		n := s[i] & o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Fill adds every fact in [0, n).
func (s BitSet) Fill(n int) {
	for i := 0; i < n/64; i++ {
		s[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 {
		s[n/64] |= (1 << uint(r)) - 1
	}
}

// Count returns the number of facts in the set.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Join selects how predecessor OUT sets merge into a block's IN set.
type Join int

const (
	// Union is a "may" analysis: a fact holds at block entry if it holds
	// on ANY path in.
	Union Join = iota
	// Intersect is a "must" analysis: a fact holds only if it holds on
	// EVERY path in.
	Intersect
)

// Transfer maps a block's IN set to its OUT set. The implementation
// must treat in as read-only and return a fresh (or reused-but-owned)
// set; the framework never aliases the returned set with in.
type Transfer func(b *cfg.Block, in BitSet) BitSet

// Result holds the fixpoint solution.
type Result struct {
	// In[i] is the fact set at entry of block with Index i.
	In []BitSet
	// Out[i] is the fact set at exit of block with Index i.
	Out []BitSet
}

// Forward solves a forward dataflow problem to fixpoint: nfacts is the
// fact-domain size, entry the boundary set at the function entry, and
// transfer the per-block flow function. Worklist order is reverse
// postorder, so loop-free graphs converge in one pass.
func Forward(g *cfg.Graph, nfacts int, join Join, entry BitSet, transfer Transfer) *Result {
	n := len(g.Blocks)
	res := &Result{In: make([]BitSet, n), Out: make([]BitSet, n)}
	top := func() BitSet {
		s := NewBitSet(nfacts)
		if join == Intersect {
			s.Fill(nfacts)
		}
		return s
	}
	for i := range res.In {
		res.In[i] = top()
	}
	res.In[g.Entry.Index] = entry.Copy()

	// Reverse postorder via DFS postorder reversal.
	var post []*cfg.Block
	seen := make([]bool, n)
	var dfs func(b *cfg.Block)
	dfs = func(b *cfg.Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	order := make([]*cfg.Block, len(post))
	for i, b := range post {
		order[len(post)-1-i] = b
	}

	inWork := make([]bool, n)
	work := make([]*cfg.Block, 0, len(order))
	for _, b := range order {
		work = append(work, b)
		inWork[b.Index] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		if b != g.Entry {
			in := top()
			first := true
			for _, p := range b.Preds {
				if res.Out[p.Index] == nil {
					continue // predecessor not yet evaluated
				}
				if first && join == Intersect {
					copy(in, res.Out[p.Index])
					first = false
					continue
				}
				first = false
				if join == Union {
					in.UnionWith(res.Out[p.Index])
				} else {
					in.IntersectWith(res.Out[p.Index])
				}
			}
			res.In[b.Index] = in
		}
		out := transfer(b, res.In[b.Index])
		if res.Out[b.Index] == nil || !out.Equal(res.Out[b.Index]) {
			res.Out[b.Index] = out
			for _, s := range b.Succs {
				if !inWork[s.Index] {
					inWork[s.Index] = true
					work = append(work, s)
				}
			}
		}
	}
	// Blocks never evaluated (unreachable) keep empty/top In and nil
	// Out; normalize Out so callers can index freely.
	for i := range res.Out {
		if res.Out[i] == nil {
			res.Out[i] = NewBitSet(nfacts)
		}
	}
	return res
}

// GenKill solves a classic gen/kill problem: OUT = gen ∪ (IN − kill).
func GenKill(g *cfg.Graph, nfacts int, join Join, entry BitSet, genkill func(b *cfg.Block) (gen, kill BitSet)) *Result {
	gens := make([]BitSet, len(g.Blocks))
	kills := make([]BitSet, len(g.Blocks))
	for _, b := range g.Blocks {
		gens[b.Index], kills[b.Index] = genkill(b)
	}
	return Forward(g, nfacts, join, entry, func(b *cfg.Block, in BitSet) BitSet {
		out := in.Copy()
		for i := range out {
			out[i] = (out[i] &^ kills[b.Index][i]) | gens[b.Index][i]
		}
		return out
	})
}
