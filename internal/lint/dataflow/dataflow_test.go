package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"bytebrain/internal/lint/cfg"
	"bytebrain/internal/lint/dataflow"
)

// build parses a function body into a CFG and returns it with a marker
// lookup (see cfg tests for the idiom).
func build(t *testing.T, body string) (*cfg.Graph, map[string]*cfg.Block) {
	t.Helper()
	src := "package p\nfunc mark(string) {}\nfunc cond() bool { return true }\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	g := cfg.New(fn.Body)
	marks := map[string]*cfg.Block{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			cfg.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && len(call.Args) == 1 {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
						if lit, ok := call.Args[0].(*ast.BasicLit); ok {
							marks[strings.Trim(lit.Value, `"`)] = b
						}
					}
				}
				return true
			})
		}
	}
	return g, marks
}

// marker returns the name of the first marker in block b, or "".
func marker(b *cfg.Block) string {
	name := ""
	for _, n := range b.Nodes {
		cfg.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && len(call.Args) == 1 {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
					if lit, ok := call.Args[0].(*ast.BasicLit); ok && name == "" {
						name = strings.Trim(lit.Value, `"`)
					}
				}
			}
			return true
		})
	}
	return name
}

// TestMayVsMust runs a "fact set at gen, cleared at kill" problem over a
// diamond: fact 0 is generated in one branch only. Under Union (may) the
// join sees it; under Intersect (must) it does not.
func TestMayVsMust(t *testing.T) {
	g, marks := build(t, `
if cond() {
	mark("gen")
} else {
	mark("skip")
}
mark("join")`)
	transfer := func(b *cfg.Block, in dataflow.BitSet) dataflow.BitSet {
		out := in.Copy()
		if marker(b) == "gen" {
			out.Set(0)
		}
		return out
	}
	may := dataflow.Forward(g, 1, dataflow.Union, dataflow.NewBitSet(1), transfer)
	if !may.In[marks["join"].Index].Has(0) {
		t.Error("union join lost a fact present on one path")
	}
	must := dataflow.Forward(g, 1, dataflow.Intersect, dataflow.NewBitSet(1), transfer)
	if must.In[marks["join"].Index].Has(0) {
		t.Error("intersect join kept a fact absent on one path")
	}
	// On both joins the fact must hold inside the generating branch.
	if !may.Out[marks["gen"].Index].Has(0) || !must.Out[marks["gen"].Index].Has(0) {
		t.Error("fact missing at its own gen block")
	}
}

// TestLoopFixpoint pins convergence around a back edge: a fact generated
// before a loop and killed inside it must be gone at the loop exit under
// must-analysis, but still "may" hold at the header (first iteration).
func TestLoopFixpoint(t *testing.T) {
	g, marks := build(t, `
mark("pre")
for cond() {
	mark("kill")
}
mark("post")`)
	genkill := func(b *cfg.Block) (gen, kill dataflow.BitSet) {
		gen, kill = dataflow.NewBitSet(1), dataflow.NewBitSet(1)
		switch marker(b) {
		case "pre":
			gen.Set(0)
		case "kill":
			kill.Set(0)
		}
		return gen, kill
	}
	may := dataflow.GenKill(g, 1, dataflow.Union, dataflow.NewBitSet(1), genkill)
	if !may.In[marks["post"].Index].Has(0) {
		t.Error("may-analysis lost the zero-iteration path to post")
	}
	must := dataflow.GenKill(g, 1, dataflow.Intersect, dataflow.NewBitSet(1), genkill)
	if must.In[marks["post"].Index].Has(0) {
		t.Error("must-analysis kept a fact killed on the looping path")
	}
}

func TestBitSetOps(t *testing.T) {
	s := dataflow.NewBitSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Error("set/has across word boundaries broken")
	}
	if got := s.Count(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	s.Clear(64)
	if s.Has(64) {
		t.Error("clear failed")
	}
	o := s.Copy()
	if !o.Equal(s) {
		t.Error("copy not equal")
	}
	o.Set(5)
	if o.Equal(s) {
		t.Error("copy aliased original")
	}
	full := dataflow.NewBitSet(130)
	full.Fill(130)
	if full.Count() != 130 {
		t.Errorf("fill count = %d, want 130", full.Count())
	}
	if changed := s.UnionWith(o); !changed || !s.Has(5) {
		t.Error("union failed")
	}
	if changed := s.IntersectWith(dataflow.NewBitSet(130)); !changed || s.Count() != 0 {
		t.Error("intersect with empty failed")
	}
}
