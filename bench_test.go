// Benchmarks: one testing.B per table and figure of the paper, each
// regenerating its artifact through the experiments harness, plus
// micro-benchmarks for the training and matching hot paths.
//
// The per-artifact benches run at reduced scale with surrogate inference
// delays zeroed so the whole suite stays in CPU-bound territory; the
// full-fidelity regeneration (calibrated surrogate latencies, bigger cuts)
// is `go run ./cmd/benchall`, which writes EXPERIMENTS.md.
package bytebrain_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"bytebrain"
	"bytebrain/internal/experiments"
	"bytebrain/internal/logstore"
	"bytebrain/internal/segment"
)

func benchConfig() experiments.Config {
	return experiments.Config{
		Seed:           1,
		Scale:          0.001,
		Threshold:      0.7,
		Timeout:        30 * time.Second,
		FastSurrogates: true,
	}
}

// runArtifact executes one experiment per iteration and reports its row
// count so the benchmark has a visible output dependency.
func runArtifact(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1DatasetStats(b *testing.B)        { runArtifact(b, "table1") }
func BenchmarkTable2LogHubGA(b *testing.B)            { runArtifact(b, "table2") }
func BenchmarkTable3LogHub2GA(b *testing.B)           { runArtifact(b, "table3") }
func BenchmarkTable4ThresholdTemplates(b *testing.B)  { runArtifact(b, "table4") }
func BenchmarkTable5Industrial(b *testing.B)          { runArtifact(b, "table5") }
func BenchmarkFig2Scatter(b *testing.B)               { runArtifact(b, "fig2") }
func BenchmarkFig4DuplicationCDF(b *testing.B)        { runArtifact(b, "fig4") }
func BenchmarkFig6Throughput(b *testing.B)            { runArtifact(b, "fig6") }
func BenchmarkFig7Scaling(b *testing.B)               { runArtifact(b, "fig7") }
func BenchmarkFig8AccuracyAblation(b *testing.B)      { runArtifact(b, "fig8") }
func BenchmarkFig9EfficiencyAblation(b *testing.B)    { runArtifact(b, "fig9") }
func BenchmarkFig10DictionarySize(b *testing.B)       { runArtifact(b, "fig10") }
func BenchmarkFig11ThresholdSensitivity(b *testing.B) { runArtifact(b, "fig11") }
func BenchmarkFig12Parallelism(b *testing.B)          { runArtifact(b, "fig12") }

// BenchmarkTrain measures offline training throughput on the HDFS cut.
func BenchmarkTrain(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("HDFS", 1)
	if err != nil {
		b.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Train(ds.Lines); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ds.Lines))*float64(b.N)/b.Elapsed().Seconds(), "logs/s")
}

// BenchmarkMatch measures online matching throughput against a trained
// model (the §4.8 hot path).
func BenchmarkMatch(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("HDFS", 1)
	if err != nil {
		b.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 1})
	res, err := parser.Train(ds.Lines)
	if err != nil {
		b.Fatal(err)
	}
	matcher, err := parser.NewMatcher(res.Model)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matcher.Match(ds.Lines[i%len(ds.Lines)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "logs/s")
}

// BenchmarkMatchLinear is the w/o-index matcher for comparison.
func BenchmarkMatchLinear(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("HDFS", 1)
	if err != nil {
		b.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 1, LinearMatch: true})
	res, err := parser.Train(ds.Lines)
	if err != nil {
		b.Fatal(err)
	}
	matcher, err := parser.NewMatcher(res.Model)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matcher.Match(ds.Lines[i%len(ds.Lines)])
	}
}

// BenchmarkQueryRollup measures the query-time precision walk.
func BenchmarkQueryRollup(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("Mac", 1)
	if err != nil {
		b.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 1})
	res, err := parser.Train(ds.Lines)
	if err != nil {
		b.Fatal(err)
	}
	leaves := res.Model.Leaves()
	if len(leaves) == 0 {
		b.Fatal("no leaves")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Model.TemplateAt(leaves[i%len(leaves)], 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceIngest measures the end-to-end service ingestion path
// (match + append + index).
func BenchmarkServiceIngest(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("Zookeeper", 1)
	if err != nil {
		b.Fatal(err)
	}
	svc := bytebrain.NewService(bytebrain.ServiceConfig{
		Parser:      bytebrain.Options{Seed: 1},
		TrainVolume: 1 << 30,
	})
	if err := svc.CreateTopic("bench"); err != nil {
		b.Fatal(err)
	}
	if err := svc.Ingest("bench", ds.Lines); err != nil {
		b.Fatal(err)
	}
	if err := svc.Train("bench"); err != nil {
		b.Fatal(err)
	}
	batch := ds.Lines[:500]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Ingest("bench", batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "logs/s")
}

// BenchmarkConcurrentIngest measures the service ingestion path under
// goroutine contention on ONE topic. Matching runs lock-free against the
// atomically published snapshot and the whole batch lands in the store
// through one group-committed AppendBatch (one store lock and one WAL
// write per batch instead of one per record), so throughput should scale
// with goroutines instead of flat-lining on a topic mutex. The
// store=compacting variant runs with a real data dir so every batch also
// pays (one) WAL encode+write — the paper's cloud-ingest configuration.
func BenchmarkConcurrentIngest(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("Zookeeper", 1)
	if err != nil {
		b.Fatal(err)
	}
	stores := []struct {
		name string
		cfg  func(b *testing.B) bytebrain.ServiceConfig
	}{
		{"mem", func(b *testing.B) bytebrain.ServiceConfig {
			return bytebrain.ServiceConfig{
				Parser:      bytebrain.Options{Seed: 1},
				TrainVolume: 1 << 30,
			}
		}},
		{"compacting", func(b *testing.B) bytebrain.ServiceConfig {
			return bytebrain.ServiceConfig{
				Parser:       bytebrain.Options{Seed: 1},
				TrainVolume:  1 << 30,
				DataDir:      b.TempDir(),
				SegmentBytes: 16 << 20,
				SegmentCodec: "flate",
			}
		}},
	}
	for _, store := range stores {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("store=%s/goroutines=%d", store.name, workers), func(b *testing.B) {
				svc := bytebrain.NewService(store.cfg(b))
				defer svc.Close()
				if err := svc.CreateTopic("bench"); err != nil {
					b.Fatal(err)
				}
				if err := svc.Ingest("bench", ds.Lines); err != nil {
					b.Fatal(err)
				}
				if err := svc.Train("bench"); err != nil {
					b.Fatal(err)
				}
				batch := ds.Lines[:200]
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					iters := b.N / workers
					if w < b.N%workers {
						iters++
					}
					wg.Add(1)
					go func(iters int) {
						defer wg.Done()
						for i := 0; i < iters; i++ {
							if err := svc.Ingest("bench", batch); err != nil {
								b.Error(err)
								return
							}
						}
					}(iters)
				}
				wg.Wait()
				b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "logs/s")
			})
		}
	}
}

// BenchmarkIngestAllocs locks in allocations per line on the steady-state
// ingestion path (tokenize → match → group-committed append) over a
// WAL-backed compacting store: one iteration ingests one 256-line batch
// on a single goroutine, the shape every Ingester worker executes. The
// allocs/op number here is the regression surface the CI allocation smoke
// step budgets (see TestAllocBudget in alloc_test.go).
func BenchmarkIngestAllocs(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("Zookeeper", 1)
	if err != nil {
		b.Fatal(err)
	}
	svc := bytebrain.NewService(bytebrain.ServiceConfig{
		Parser:       bytebrain.Options{Seed: 1},
		TrainVolume:  1 << 30,
		DataDir:      b.TempDir(),
		SegmentBytes: 16 << 20,
		SegmentCodec: "flate",
	})
	defer svc.Close()
	if err := svc.CreateTopic("bench"); err != nil {
		b.Fatal(err)
	}
	if err := svc.Ingest("bench", ds.Lines); err != nil {
		b.Fatal(err)
	}
	if err := svc.Train("bench"); err != nil {
		b.Fatal(err)
	}
	batch := ds.Lines[:256]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Ingest("bench", batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "logs/s")
}

// BenchmarkShardedIngest measures raw append throughput into a sharded
// topic store with queue→shard affinity — the write-side counterpart of
// BenchmarkConcurrentIngest, which plateaus on the single store mutex.
// A fixed worker pool appends in parallel; with shards=1 every worker
// contends on one mutex, with more shards each mutex serves
// workers/shards writers, so throughput should scale with shard count on
// a multi-core runner (~2x or better at 4 shards vs 1).
func BenchmarkShardedIngest(b *testing.B) {
	recs := segmentBenchRecords(b, "Zookeeper")
	// At least 4 workers even on small runners so the shards=1 case is
	// genuinely contended; capped at 8 so the comparison stays stable on
	// very wide machines.
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	if workers > 8 {
		workers = 8
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			if shards > workers {
				// With fewer writers than shards the run would silently
				// measure only `workers` shards under an 8-shard label.
				b.Skipf("only %d workers; a %d-shard run would not use them all", workers, shards)
			}
			store, err := logstore.OpenSharded("bench", logstore.ShardConfig{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				iters := b.N / workers
				if w < b.N%workers {
					iters++
				}
				wg.Add(1)
				go func(w, iters int) {
					defer wg.Done()
					shard := w % shards
					for i := 0; i < iters; i++ {
						r := recs[i%len(recs)]
						if _, err := store.AppendShard(shard, r.Time, r.Raw, r.TemplateID); err != nil {
							b.Error(err)
							return
						}
					}
				}(w, iters)
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "logs/s")
		})
	}
}

// BenchmarkShardedIngestBatch is BenchmarkShardedIngest through the
// group-commit path: each worker appends 256-record batches to its
// pinned shard via AppendShardBatch, so a batch pays one store lock and
// one offset check instead of 256. One benchmark op is one RECORD (a
// batch lands every 256 iterations), so ns/op and logs/s compare
// directly against the per-record benchmark above at the same -benchtime
// count — both store exactly b.N records.
func BenchmarkShardedIngestBatch(b *testing.B) {
	recs := segmentBenchRecords(b, "Zookeeper")
	const batchSize = 256
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	if workers > 8 {
		workers = 8
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			if shards > workers {
				b.Skipf("only %d workers; a %d-shard run would not use them all", workers, shards)
			}
			store, err := logstore.OpenSharded("bench", logstore.ShardConfig{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			// Pre-build the batches outside the timed loop; the benchmark
			// measures the store, not batch assembly.
			batches := make([][]logstore.BatchRecord, (len(recs)+batchSize-1)/batchSize)
			for i := range batches {
				lo := i * batchSize
				hi := lo + batchSize
				if hi > len(recs) {
					hi = len(recs)
				}
				batch := make([]logstore.BatchRecord, hi-lo)
				for j, r := range recs[lo:hi] {
					batch[j] = logstore.BatchRecord{Raw: r.Raw, TemplateID: r.TemplateID}
				}
				batches[i] = batch
			}
			base := time.Unix(1700000000, 0)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				iters := b.N / workers
				if w < b.N%workers {
					iters++
				}
				wg.Add(1)
				go func(w, iters int) {
					defer wg.Done()
					shard := w % shards
					for done, bi := 0, 0; done < iters; bi++ {
						batch := batches[bi%len(batches)]
						if n := iters - done; len(batch) > n {
							batch = batch[:n]
						}
						if _, err := store.AppendShardBatch(shard, base, batch); err != nil {
							b.Error(err)
							return
						}
						done += len(batch)
					}
				}(w, iters)
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "logs/s")
		})
	}
}

// BenchmarkQueryPushdown compares grouped queries over sealed segments:
// the metadata pushdown path (Service.Query via Store.GroupedCounts) vs a
// full record scan that decompresses every block per query. The pushdown
// sub-benchmark also asserts the segment block-read counter does not move
// — grouped queries are metadata-only.
func BenchmarkQueryPushdown(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("HDFS", 1)
	if err != nil {
		b.Fatal(err)
	}
	newSealedService := func(b *testing.B) *bytebrain.Service {
		svc := bytebrain.NewService(bytebrain.ServiceConfig{
			Parser:       bytebrain.Options{Seed: 1},
			TrainVolume:  1 << 30,
			SegmentBytes: 64 << 10,
			SegmentCodec: "flate",
		})
		if err := svc.CreateTopic("bench"); err != nil {
			b.Fatal(err)
		}
		if err := svc.Ingest("bench", ds.Lines); err != nil {
			b.Fatal(err)
		}
		if err := svc.Train("bench"); err != nil {
			b.Fatal(err)
		}
		// Re-ingest so records carry trained template IDs, then seal.
		if err := svc.Ingest("bench", ds.Lines); err != nil {
			b.Fatal(err)
		}
		if err := svc.Compact("bench"); err != nil {
			b.Fatal(err)
		}
		return svc
	}

	b.Run("pushdown", func(b *testing.B) {
		svc := newSealedService(b)
		defer svc.Close()
		before, err := svc.TopicStats("bench")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := svc.Query("bench", 0.7, bytebrain.TimeRange{})
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) == 0 {
				b.Fatal("no rows")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		after, err := svc.TopicStats("bench")
		if err != nil {
			b.Fatal(err)
		}
		if after.SegmentBlockReads != before.SegmentBlockReads {
			b.Fatalf("pushdown query decompressed %d blocks (reads %d -> %d), want 0",
				after.SegmentBlockReads-before.SegmentBlockReads, before.SegmentBlockReads, after.SegmentBlockReads)
		}
	})

	b.Run("fullscan", func(b *testing.B) {
		svc := newSealedService(b)
		defer svc.Close()
		model, err := svc.Model("bench")
		if err != nil || model == nil {
			b.Fatalf("model: %v", err)
		}
		store, err := svc.Store("bench")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The pre-pushdown Query: visit every record, roll each up.
			counts := map[uint64]int{}
			store.Scan(0, -1, logstore.TimeRange{}, func(r logstore.Record) bool {
				id := r.TemplateID
				if id != 0 {
					if n, err := model.TemplateAt(id, 0.7); err == nil {
						id = n.ID
					}
				}
				counts[id]++
				return true
			})
			if len(counts) == 0 {
				b.Fatal("no groups")
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}

// BenchmarkTimeRangeQuery measures time-range pushdown over many sealed
// segments: 24 sealed blocks on a 10-minute cadence, each spanning the
// first minute of its window (records at +0m and +1m), queried with a
// range that straddles exactly one block. The narrow sub-benchmark
// asserts via the block-read counter that each query decompresses
// exactly that one block — O(blocks-in-range), not O(all-blocks) — and
// the aligned sub-benchmark that a range covering whole blocks
// decompresses nothing at all. The fullscan sub-benchmark is the
// pre-pushdown cost for comparison: every block, every query.
func BenchmarkTimeRangeQuery(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("HDFS", 1)
	if err != nil {
		b.Fatal(err)
	}
	const blocks = 24
	base := time.Date(2026, 7, 26, 0, 0, 0, 0, time.UTC)
	// The fake clock is mutex-guarded: the per-topic background trainer
	// reads Now from its own goroutine.
	var clockMu sync.Mutex
	now := base
	setNow := func(t time.Time) {
		clockMu.Lock()
		now = t
		clockMu.Unlock()
	}
	newService := func(b *testing.B) *bytebrain.Service {
		b.Helper()
		setNow(base)
		svc := bytebrain.NewService(bytebrain.ServiceConfig{
			Parser:        bytebrain.Options{Seed: 1},
			TrainVolume:   1 << 30,
			TrainInterval: 365 * 24 * time.Hour, // clock jumps must not trigger training
			SegmentBytes:  1 << 30,              // seal only via Compact
			SegmentCodec:  "flate",
			Now: func() time.Time {
				clockMu.Lock()
				defer clockMu.Unlock()
				return now
			},
		})
		if err := svc.CreateTopic("bench"); err != nil {
			b.Fatal(err)
		}
		if err := svc.Ingest("bench", ds.Lines); err != nil {
			b.Fatal(err)
		}
		if err := svc.Train("bench"); err != nil {
			b.Fatal(err)
		}
		if err := svc.Compact("bench"); err != nil {
			b.Fatal(err)
		}
		// One sealed block per 10-minute window, each with records at
		// +0m and +1m so the block's metadata spans a real interval.
		per := len(ds.Lines) / blocks
		for blk := 0; blk < blocks; blk++ {
			batch := ds.Lines[blk*per : (blk+1)*per]
			start := base.Add(time.Duration(blk*10) * time.Minute)
			setNow(start)
			if err := svc.Ingest("bench", batch[:per/2]); err != nil {
				b.Fatal(err)
			}
			setNow(start.Add(time.Minute))
			if err := svc.Ingest("bench", batch[per/2:]); err != nil {
				b.Fatal(err)
			}
			if err := svc.Compact("bench"); err != nil {
				b.Fatal(err)
			}
		}
		stats, err := svc.TopicStats("bench")
		if err != nil {
			b.Fatal(err)
		}
		if stats.Segments < blocks {
			b.Fatalf("setup sealed %d segments, want >= %d", stats.Segments, blocks)
		}
		return svc
	}
	blockReads := func(b *testing.B, svc *bytebrain.Service) int64 {
		b.Helper()
		stats, err := svc.TopicStats("bench")
		if err != nil {
			b.Fatal(err)
		}
		return stats.SegmentBlockReads
	}
	// Covers block 12's first instant (+0m) but cuts off its +1m tail:
	// the range straddles that one block and overlaps no other, so its
	// records at +0m answer the query but the block cannot be taken
	// whole from metadata.
	narrow := bytebrain.TimeRange{
		From: base.Add(120 * time.Minute),
		To:   base.Add(120*time.Minute + 30*time.Second),
	}

	b.Run("narrow", func(b *testing.B) {
		svc := newService(b)
		defer svc.Close()
		before := blockReads(b, svc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := svc.Query("bench", 0.7, narrow)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) == 0 {
				b.Fatal("no rows in range")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		// The efficiency contract: each query decompressed exactly the
		// one block the range straddles, out of 24+ sealed blocks.
		if delta := blockReads(b, svc) - before; delta != int64(b.N) {
			b.Fatalf("narrow range read %d blocks over %d queries, want exactly 1 per query", delta, b.N)
		}
	})

	b.Run("aligned", func(b *testing.B) {
		svc := newService(b)
		defer svc.Close()
		// Covers blocks 5..15 entirely (each spans [+0m, +1m] of its
		// 10-minute window): answered from metadata alone.
		aligned := bytebrain.TimeRange{
			From: base.Add(50 * time.Minute),
			To:   base.Add(151 * time.Minute),
		}
		before := blockReads(b, svc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := svc.Query("bench", 0.7, aligned)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) == 0 {
				b.Fatal("no rows in range")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		if delta := blockReads(b, svc) - before; delta != 0 {
			b.Fatalf("block-aligned range read %d blocks, want 0", delta)
		}
	})

	b.Run("fullscan", func(b *testing.B) {
		svc := newService(b)
		defer svc.Close()
		store, err := svc.Store("bench")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The pre-pushdown shape: scan everything, filter by time.
			n := 0
			store.Scan(0, -1, logstore.TimeRange{}, func(r logstore.Record) bool {
				if !r.Time.Before(narrow.From) && !r.Time.After(narrow.To) {
					n++
				}
				return true
			})
			if n == 0 {
				b.Fatal("no records in range")
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}

// segmentBenchRecords builds template-tagged records from a synthetic
// LogHub dataset for the segment-store benchmarks.
func segmentBenchRecords(b *testing.B, name string) []segment.Record {
	b.Helper()
	ds, err := bytebrain.GenerateLogHub(name, 1)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Unix(1700000000, 0)
	recs := make([]segment.Record, len(ds.Lines))
	for i, line := range ds.Lines {
		recs[i] = segment.Record{
			Offset:     int64(i),
			Time:       base.Add(time.Duration(i) * time.Millisecond),
			Raw:        line,
			TemplateID: uint64(ds.Truth[i]) + 1,
		}
	}
	return recs
}

// BenchmarkSegmentEncode measures sealing throughput and reports the
// compression ratio of the template-aware columnar encoding.
func BenchmarkSegmentEncode(b *testing.B) {
	recs := segmentBenchRecords(b, "HDFS")
	var raw int64
	for _, r := range recs {
		raw += int64(len(r.Raw))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var encoded int64
	for i := 0; i < b.N; i++ {
		blob, _, err := segment.Encode(recs, segment.CodecFlate)
		if err != nil {
			b.Fatal(err)
		}
		encoded = int64(len(blob))
	}
	b.ReportMetric(float64(raw)*float64(b.N)/b.Elapsed().Seconds()/1e6, "rawMB/s")
	b.ReportMetric(100*float64(encoded)/float64(raw), "compressed%")
}

// BenchmarkSegmentDecode measures the full payload decode (the cost a
// non-pushdownable query pays per block).
func BenchmarkSegmentDecode(b *testing.B) {
	recs := segmentBenchRecords(b, "HDFS")
	blob, _, err := segment.Encode(recs, segment.CodecFlate)
	if err != nil {
		b.Fatal(err)
	}
	r, err := segment.Open(blob)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Records(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "logs/s")
}

// BenchmarkCompactingIngest measures append throughput through the
// hybrid store while the background compactor seals segments.
func BenchmarkCompactingIngest(b *testing.B) {
	recs := segmentBenchRecords(b, "Zookeeper")
	store, err := logstore.OpenCompacting("bench", logstore.CompactConfig{
		SegmentBytes: 1 << 20, Codec: segment.CodecFlate,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		if _, err := store.Append(r.Time, r.Raw, r.TemplateID); err != nil {
			b.Fatal(err)
		}
	}
	store.WaitIdle()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "logs/s")
}

// BenchmarkCompactingByTemplate measures grouped queries over sealed
// segments, where template pushdown skips non-matching blocks.
func BenchmarkCompactingByTemplate(b *testing.B) {
	recs := segmentBenchRecords(b, "HDFS")
	store, err := logstore.OpenCompacting("bench", logstore.CompactConfig{
		SegmentBytes: 64 << 10, Codec: segment.CodecFlate,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	for _, r := range recs {
		if _, err := store.Append(r.Time, r.Raw, r.TemplateID); err != nil {
			b.Fatal(err)
		}
	}
	if err := store.Seal(); err != nil {
		b.Fatal(err)
	}
	store.WaitIdle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := store.ByTemplate(uint64(1 + i%5)); len(got) == 0 {
			b.Fatal("no offsets")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkModelSerialize measures model snapshot cost (internal-topic
// persistence).
func BenchmarkModelSerialize(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("Linux", 1)
	if err != nil {
		b.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 1})
	res, err := parser.Train(ds.Lines)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := res.Model.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(data)), "model-bytes")
		}
	}
}
