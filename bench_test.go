// Benchmarks: one testing.B per table and figure of the paper, each
// regenerating its artifact through the experiments harness, plus
// micro-benchmarks for the training and matching hot paths.
//
// The per-artifact benches run at reduced scale with surrogate inference
// delays zeroed so the whole suite stays in CPU-bound territory; the
// full-fidelity regeneration (calibrated surrogate latencies, bigger cuts)
// is `go run ./cmd/benchall`, which writes EXPERIMENTS.md.
package bytebrain_test

import (
	"testing"
	"time"

	"bytebrain"
	"bytebrain/internal/experiments"
)

func benchConfig() experiments.Config {
	return experiments.Config{
		Seed:           1,
		Scale:          0.001,
		Threshold:      0.7,
		Timeout:        30 * time.Second,
		FastSurrogates: true,
	}
}

// runArtifact executes one experiment per iteration and reports its row
// count so the benchmark has a visible output dependency.
func runArtifact(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1DatasetStats(b *testing.B)        { runArtifact(b, "table1") }
func BenchmarkTable2LogHubGA(b *testing.B)            { runArtifact(b, "table2") }
func BenchmarkTable3LogHub2GA(b *testing.B)           { runArtifact(b, "table3") }
func BenchmarkTable4ThresholdTemplates(b *testing.B)  { runArtifact(b, "table4") }
func BenchmarkTable5Industrial(b *testing.B)          { runArtifact(b, "table5") }
func BenchmarkFig2Scatter(b *testing.B)               { runArtifact(b, "fig2") }
func BenchmarkFig4DuplicationCDF(b *testing.B)        { runArtifact(b, "fig4") }
func BenchmarkFig6Throughput(b *testing.B)            { runArtifact(b, "fig6") }
func BenchmarkFig7Scaling(b *testing.B)               { runArtifact(b, "fig7") }
func BenchmarkFig8AccuracyAblation(b *testing.B)      { runArtifact(b, "fig8") }
func BenchmarkFig9EfficiencyAblation(b *testing.B)    { runArtifact(b, "fig9") }
func BenchmarkFig10DictionarySize(b *testing.B)       { runArtifact(b, "fig10") }
func BenchmarkFig11ThresholdSensitivity(b *testing.B) { runArtifact(b, "fig11") }
func BenchmarkFig12Parallelism(b *testing.B)          { runArtifact(b, "fig12") }

// BenchmarkTrain measures offline training throughput on the HDFS cut.
func BenchmarkTrain(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("HDFS", 1)
	if err != nil {
		b.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Train(ds.Lines); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ds.Lines))*float64(b.N)/b.Elapsed().Seconds(), "logs/s")
}

// BenchmarkMatch measures online matching throughput against a trained
// model (the §4.8 hot path).
func BenchmarkMatch(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("HDFS", 1)
	if err != nil {
		b.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 1})
	res, err := parser.Train(ds.Lines)
	if err != nil {
		b.Fatal(err)
	}
	matcher, err := parser.NewMatcher(res.Model)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matcher.Match(ds.Lines[i%len(ds.Lines)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "logs/s")
}

// BenchmarkMatchLinear is the w/o-index matcher for comparison.
func BenchmarkMatchLinear(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("HDFS", 1)
	if err != nil {
		b.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 1, LinearMatch: true})
	res, err := parser.Train(ds.Lines)
	if err != nil {
		b.Fatal(err)
	}
	matcher, err := parser.NewMatcher(res.Model)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matcher.Match(ds.Lines[i%len(ds.Lines)])
	}
}

// BenchmarkQueryRollup measures the query-time precision walk.
func BenchmarkQueryRollup(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("Mac", 1)
	if err != nil {
		b.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 1})
	res, err := parser.Train(ds.Lines)
	if err != nil {
		b.Fatal(err)
	}
	leaves := res.Model.Leaves()
	if len(leaves) == 0 {
		b.Fatal("no leaves")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Model.TemplateAt(leaves[i%len(leaves)], 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceIngest measures the end-to-end service ingestion path
// (match + append + index).
func BenchmarkServiceIngest(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("Zookeeper", 1)
	if err != nil {
		b.Fatal(err)
	}
	svc := bytebrain.NewService(bytebrain.ServiceConfig{
		Parser:      bytebrain.Options{Seed: 1},
		TrainVolume: 1 << 30,
	})
	if err := svc.CreateTopic("bench"); err != nil {
		b.Fatal(err)
	}
	if err := svc.Ingest("bench", ds.Lines); err != nil {
		b.Fatal(err)
	}
	if err := svc.Train("bench"); err != nil {
		b.Fatal(err)
	}
	batch := ds.Lines[:500]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Ingest("bench", batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "logs/s")
}

// BenchmarkModelSerialize measures model snapshot cost (internal-topic
// persistence).
func BenchmarkModelSerialize(b *testing.B) {
	ds, err := bytebrain.GenerateLogHub("Linux", 1)
	if err != nil {
		b.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 1})
	res, err := parser.Train(ds.Lines)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := res.Model.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(data)), "model-bytes")
		}
	}
}
