// Package bytebrain is an open reproduction of ByteBrain-LogParser
// ("Adaptive and Efficient Log Parsing as a Cloud Service", SIGMOD-
// Companion 2025): an adaptive, high-throughput log parser built on
// hierarchical clustering, plus the cloud log service it is designed to
// power.
//
// The package exposes three layers:
//
//   - the parser: Train log batches into a clustering-tree Model whose
//     nodes are templates at increasing precision (saturation), match new
//     logs online against template text, and control precision at query
//     time with a threshold — no reprocessing, no retraining;
//   - the service: multi-topic ingestion with volume/time-triggered
//     retraining, model merging, append-only storage, and an HTTP API
//     (see NewService);
//   - analytics: template-count anomaly detection, window comparison, and
//     a failure-scenario library (see analytics re-exports in this
//     package).
//
// Quickstart:
//
//	parser := bytebrain.New(bytebrain.Options{})
//	res, err := parser.Train(lines)
//	matcher, err := parser.NewMatcher(res.Model)
//	m := matcher.Match("Receiving block blk_123 src: /10.0.0.1:50010")
//	tmpl, err := res.Model.TemplateAt(m.NodeID, 0.7) // precision slider
package bytebrain

import (
	"bytebrain/internal/core"
	"bytebrain/internal/template"
	"bytebrain/internal/tokenize"
	"bytebrain/internal/vars"
)

// Core parser surface. These are aliases of the engine types so the public
// API and the internal implementation cannot drift.
type (
	// Options configures parsing; the zero value uses production
	// defaults. See the field docs for the ablation switches that
	// reproduce the paper's §5.4 variants.
	Options = core.Options
	// Parser trains models from log batches.
	Parser = core.Parser
	// TrainResult carries the trained Model and per-line assignments.
	TrainResult = core.TrainResult
	// Model is the clustering forest: templates with saturation scores
	// and parent links, serializable, mergeable across training cycles.
	Model = core.Model
	// Node is one template node.
	Node = core.Node
	// Matcher matches logs against a model's template text (§4.8) and
	// inserts temporary templates for unseen structures.
	Matcher = core.Matcher
	// MatchResult reports where one log landed.
	MatchResult = core.MatchResult
)

// Wildcard is the template placeholder for a variable position.
const Wildcard = core.Wildcard

// New returns a Parser with the given options.
func New(opts Options) *Parser { return core.New(opts) }

// NewModel returns an empty model (usually obtained from Parser.Train).
func NewModel() *Model { return core.NewModel() }

// MergeModels folds a newly trained model into a previous one, merging
// templates above the similarity threshold (§3). Most callers should use
// Parser.TrainMerge or the Service, which do this automatically.
func MergeModels(prev, next *Model, threshold float64) (*Model, map[uint64]uint64, error) {
	return core.MergeModels(prev, next, threshold)
}

// TemplateSimilarity scores two equal-length templates in [0,1].
func TemplateSimilarity(a, b []string) float64 { return core.TemplateSimilarity(a, b) }

// DisplayTemplate renders template tokens for presentation with
// consecutive wildcards merged, the §7 query-result optimization that
// groups variable-length list output under one template.
func DisplayTemplate(tokens []string) string {
	return template.MergeConsecutiveWildcards(tokens)
}

// DefaultVariableRules returns the built-in common-variable replacer
// (timestamps, IPs, UUIDs, hashes). Add topic-specific rules with Add.
func DefaultVariableRules() *vars.Replacer { return vars.Default() }

// NoVariableRules returns a replacer that performs no substitution.
func NoVariableRules() *vars.Replacer { return vars.None() }

// NewRegexpTokenizer compiles a custom delimiter pattern for per-topic
// tokenization. Go's RE2 engine rejects look-around, enforcing the
// linear-time bound the paper requires of user patterns.
func NewRegexpTokenizer(pattern string) (tokenize.Tokenizer, error) {
	return tokenize.NewRegexp(pattern)
}
