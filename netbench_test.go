// Benchmarks for the streaming TCP ingest path against the HTTP
// baseline, plus the env-gated CI smoke test that enforces the
// throughput win. Both paths drive the identical service configuration
// (compacting store, real data dir, trained model) with the identical
// batches, so the only variable is the transport: serial
// request/response HTTP versus pipelined length-prefixed frames with
// credit-based acks.
//
// The gap is widest on small batches, where per-request overhead
// (headers, response encoding, connection bookkeeping) dominates the
// actual parse+append work; large batches converge toward the shared
// worker-bound ceiling.
package bytebrain_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"bytebrain"
	"bytebrain/internal/netingest"
)

// netBenchTopic builds the shared fixture: a trained "bench" topic on a
// compacting store, plus the Zookeeper lines to feed it.
func netBenchTopic(tb testing.TB) (*bytebrain.Service, []string) {
	tb.Helper()
	ds, err := bytebrain.GenerateLogHub("Zookeeper", 1)
	if err != nil {
		tb.Fatal(err)
	}
	svc := bytebrain.NewService(bytebrain.ServiceConfig{
		Parser:       bytebrain.Options{Seed: 1},
		TrainVolume:  1 << 30,
		DataDir:      tb.TempDir(),
		SegmentBytes: 16 << 20,
		SegmentCodec: "flate",
	})
	tb.Cleanup(func() { svc.Close() })
	if err := svc.CreateTopic("bench"); err != nil {
		tb.Fatal(err)
	}
	if err := svc.Ingest("bench", ds.Lines); err != nil {
		tb.Fatal(err)
	}
	if err := svc.Train("bench"); err != nil {
		tb.Fatal(err)
	}
	return svc, ds.Lines
}

func BenchmarkHTTPIngest(b *testing.B) {
	for _, size := range []int{8, 32, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			svc, lines := netBenchTopic(b)
			srv := httptest.NewServer(svc.Handler())
			defer srv.Close()
			client := srv.Client()
			body := strings.Join(lines[:size], "\n")
			url := srv.URL + "/topics/bench/logs"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Post(url, "text/plain", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("POST /logs = %d", resp.StatusCode)
				}
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "logs/s")
		})
	}
}

func BenchmarkNetIngest(b *testing.B) {
	for _, size := range []int{8, 32, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			svc, lines := netBenchTopic(b)
			naddr, err := svc.StartNetIngest("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			c, err := netingest.Dial(naddr.String(), netingest.ClientOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			batch := lines[:size]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send("bench", batch); err != nil {
					b.Fatal(err)
				}
			}
			// Flush inside the timed region: throughput counts acked
			// frames, not bytes parked in the socket buffer.
			if err := c.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "logs/s")
		})
	}
}

// bestRate measures fn reps times and returns the highest logs/s seen.
// The gate compares transport capability, and the best of a few short
// runs filters out the scheduler noise a single sample is exposed to on
// a shared CI runner.
func bestRate(size, reps int, fn func(b *testing.B)) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		res := testing.Benchmark(fn)
		if r := float64(size) * float64(res.N) / res.T.Seconds(); r > best {
			best = r
		}
	}
	return best
}

// TestNetIngestSpeedup is the CI smoke gate for the TCP path: at the
// small batch size the pipelined framed protocol must move at least 2x
// the logs/s of the serial HTTP baseline on the same service. Gated by
// env for the same reason as TestAllocBudget — it is a measurement, not
// a unit test.
func TestNetIngestSpeedup(t *testing.T) {
	if os.Getenv("BYTEBRAIN_NET_SMOKE") == "" {
		t.Skip("set BYTEBRAIN_NET_SMOKE=1 to enforce the TCP-vs-HTTP throughput gate (CI smoke step)")
	}
	// Each transport gets its own identically-configured fresh fixture:
	// measuring both against one shared service lets the first phase's
	// accumulated store (and its background sealing) steal CPU from the
	// second, which skews the ratio run to run.
	const size = 8
	httpSvc, lines := netBenchTopic(t)
	batch := lines[:size]

	srv := httptest.NewServer(httpSvc.Handler())
	defer srv.Close()
	client := srv.Client()
	body := strings.Join(batch, "\n")
	url := srv.URL + "/topics/bench/logs"
	httpRate := bestRate(size, 3, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := client.Post(url, "text/plain", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})

	tcpSvc, _ := netBenchTopic(t)
	naddr, err := tcpSvc.StartNetIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := netingest.Dial(naddr.String(), netingest.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tcpRate := bestRate(size, 3, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := c.Send("bench", batch); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
	})

	ratio := tcpRate / httpRate
	t.Logf("http: %.0f logs/s, tcp framed: %.0f logs/s, speedup %.2fx (gate 2x)", httpRate, tcpRate, ratio)
	if ratio < 2 {
		t.Fatalf("TCP ingest is %.2fx HTTP at batch=%d, want ≥2x", ratio, size)
	}
}
