package bytebrain

import (
	"bytebrain/internal/datagen"
	"bytebrain/internal/metrics"
)

// Dataset is a generated benchmark dataset with exact ground truth,
// simulating the LogHub corpora the paper evaluates on (see DESIGN.md §3
// for the substitution rationale).
type Dataset = datagen.Dataset

// DatasetNames lists the sixteen simulated LogHub datasets (Table 1).
func DatasetNames() []string { return datagen.Names() }

// LogHub2DatasetNames lists the fourteen datasets present in LogHub-2.0.
func LogHub2DatasetNames() []string { return datagen.LogHub2Names() }

// GenerateLogHub produces the 2,000-line labeled LogHub cut of a dataset.
func GenerateLogHub(name string, seed int64) (*Dataset, error) {
	return datagen.LogHub(name, seed)
}

// GenerateLogHub2 produces a LogHub-2.0 cut scaled to scale × the Table-1
// volume (scale 1.0 = full size).
func GenerateLogHub2(name string, scale float64, seed int64) (*Dataset, error) {
	return datagen.LogHub2(name, scale, seed)
}

// GroupingAccuracy computes the strict GA metric of §5.1.3 over parallel
// predicted/truth group label slices.
func GroupingAccuracy(pred, truth []int) (float64, error) {
	return metrics.GroupingAccuracy(pred, truth)
}
