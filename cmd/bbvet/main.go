// Command bbvet runs bytebrain's project-specific static-analysis
// suite (see internal/lint) over the module and exits non-zero on
// findings. It is wired into CI as a required step; run it locally
// with:
//
//	go run ./cmd/bbvet ./...
//
// Exit codes: 0 clean, 1 findings (or malformed suppressions), 2 the
// tree failed to load or type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bytebrain/internal/lint"
	"bytebrain/internal/lint/suite"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bbvet [-list] [./...]\n\nbytebrain static-analysis suite. Always analyzes the whole module\ncontaining the working directory; the ./... argument is accepted for\nfamiliarity.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	modroot, err := findModRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbvet:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(modroot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbvet:", err)
		os.Exit(2)
	}
	res, err := lint.RunAnalyzers(pkgs, analyzers, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbvet:", err)
		os.Exit(2)
	}
	for _, f := range res.Findings {
		fmt.Println(rel(modroot, f))
	}
	for _, f := range res.BadDirectives {
		fmt.Println(rel(modroot, f))
	}
	if n := len(res.Suppressed); n > 0 {
		var names []string
		for name := range res.Suppressed {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "bbvet: %d package(s); suppressions in effect:", len(pkgs))
		for _, name := range names {
			fmt.Fprintf(os.Stderr, " %s=%d", name, res.Suppressed[name])
		}
		fmt.Fprintln(os.Stderr)
	}
	if len(res.Findings) > 0 || len(res.BadDirectives) > 0 {
		fmt.Fprintf(os.Stderr, "bbvet: %d finding(s)\n", len(res.Findings)+len(res.BadDirectives))
		os.Exit(1)
	}
}

// rel rewrites the finding's path relative to the module root so CI
// output is stable regardless of checkout location.
func rel(modroot string, f lint.Finding) string {
	if r, err := filepath.Rel(modroot, f.Pos.Filename); err == nil && !filepath.IsAbs(r) {
		f.Pos.Filename = r
	}
	return f.String()
}

func findModRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
