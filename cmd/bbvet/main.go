// Command bbvet runs bytebrain's project-specific static-analysis
// suite (see internal/lint) over the module and exits non-zero on
// findings. It is wired into CI as a required step; run it locally
// with:
//
//	go run ./cmd/bbvet ./...
//
// Flags:
//
//	-list            list the analyzers and exit
//	-json            emit the run as one JSON document on stdout
//	-j N             worker count for loading and analysis (default GOMAXPROCS)
//	-budget D        fail (exit 1) if the whole run exceeds duration D
//
// Exit codes: 0 clean, 1 findings (or malformed suppressions, or budget
// exceeded), 2 the tree failed to load or type-check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"bytebrain/internal/lint"
	"bytebrain/internal/lint/suite"
)

// jsonReport is the -json document: everything CI or an editor plugin
// needs to render a run without parsing the text output.
type jsonReport struct {
	Packages      int            `json:"packages"`
	ElapsedMS     int64          `json:"elapsed_ms"`
	LoadMS        int64          `json:"load_ms"`
	Analyzers     []jsonAnalyzer `json:"analyzers"`
	Suppressed    map[string]int `json:"suppressed,omitempty"`
	Findings      []jsonFinding  `json:"findings"`
	BadDirectives []jsonFinding  `json:"bad_directives,omitempty"`
}

type jsonAnalyzer struct {
	Name      string `json:"name"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit the run as one JSON document on stdout")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "worker count for loading and analysis")
	budget := flag.Duration("budget", 0, "fail if the whole run exceeds this duration (0 = no budget)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bbvet [-list] [-json] [-j N] [-budget 30s] [./...]\n\nbytebrain static-analysis suite. Always analyzes the whole module\ncontaining the working directory; the ./... argument is accepted for\nfamiliarity.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	start := time.Now()
	modroot, err := findModRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbvet:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(modroot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAllParallel(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbvet:", err)
		os.Exit(2)
	}
	loadElapsed := time.Since(start)
	res, err := lint.RunAnalyzersParallel(pkgs, analyzers, true, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbvet:", err)
		os.Exit(2)
	}
	elapsed := time.Since(start)
	overBudget := *budget > 0 && elapsed > *budget

	if *asJSON {
		rep := jsonReport{
			Packages:   len(pkgs),
			ElapsedMS:  elapsed.Milliseconds(),
			LoadMS:     loadElapsed.Milliseconds(),
			Suppressed: res.Suppressed,
		}
		for _, a := range analyzers {
			rep.Analyzers = append(rep.Analyzers, jsonAnalyzer{Name: a.Name, ElapsedMS: res.Timings[a.Name].Milliseconds()})
		}
		rep.Findings = toJSONFindings(modroot, res.Findings)
		rep.BadDirectives = toJSONFindings(modroot, res.BadDirectives)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "bbvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(rel(modroot, f))
		}
		for _, f := range res.BadDirectives {
			fmt.Println(rel(modroot, f))
		}
		summary(os.Stderr, pkgs, analyzers, res, elapsed, loadElapsed)
	}
	if overBudget {
		fmt.Fprintf(os.Stderr, "bbvet: run took %s, over the %s budget\n", elapsed.Round(time.Millisecond), *budget)
	}
	if len(res.Findings) > 0 || len(res.BadDirectives) > 0 {
		fmt.Fprintf(os.Stderr, "bbvet: %d finding(s)\n", len(res.Findings)+len(res.BadDirectives))
		os.Exit(1)
	}
	if overBudget {
		os.Exit(1)
	}
}

// summary prints the human run report: package count, wall time split
// into load and per-analyzer sweep times, and the suppression budget.
func summary(w *os.File, pkgs []*lint.Package, analyzers []*lint.Analyzer, res *lint.Result, elapsed, load time.Duration) {
	fmt.Fprintf(w, "bbvet: %d package(s) in %s (load %s)\n",
		len(pkgs), elapsed.Round(time.Millisecond), load.Round(time.Millisecond))
	fmt.Fprintf(w, "bbvet: analyzer times:")
	for _, a := range analyzers {
		fmt.Fprintf(w, " %s=%s", a.Name, res.Timings[a.Name].Round(time.Millisecond))
	}
	fmt.Fprintln(w)
	if len(res.Suppressed) > 0 {
		var names []string
		for name := range res.Suppressed {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "bbvet: suppressions in effect:")
		for _, name := range names {
			fmt.Fprintf(w, " %s=%d", name, res.Suppressed[name])
		}
		fmt.Fprintln(w)
	}
}

func toJSONFindings(modroot string, fs []lint.Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		file := f.Pos.Filename
		if r, err := filepath.Rel(modroot, file); err == nil && !filepath.IsAbs(r) {
			file = r
		}
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     filepath.ToSlash(file),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	return out
}

// rel rewrites the finding's path relative to the module root so CI
// output is stable regardless of checkout location.
func rel(modroot string, f lint.Finding) string {
	if r, err := filepath.Rel(modroot, f.Pos.Filename); err == nil && !filepath.IsAbs(r) {
		f.Pos.Filename = r
	}
	return f.String()
}

func findModRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
