// Loggen emits simulated LogHub-style datasets (raw lines to stdout, or
// with -truth, tab-separated ground-truth template IDs and lines).
//
//	go run ./cmd/loggen -dataset HDFS -n loghub            # 2000-line cut
//	go run ./cmd/loggen -dataset Spark -scale 0.01 -truth  # scaled LogHub-2.0
//	go run ./cmd/loggen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"bytebrain"
)

func main() {
	var (
		dataset = flag.String("dataset", "HDFS", "dataset name (see -list)")
		mode    = flag.String("n", "loghub", `"loghub" for the 2000-line cut, "loghub2" for a scaled cut`)
		scale   = flag.Float64("scale", 0.003, "LogHub-2.0 volume fraction (with -n loghub2)")
		seed    = flag.Int64("seed", 1, "generation seed")
		truth   = flag.Bool("truth", false, "prefix each line with its ground-truth template ID")
		list    = flag.Bool("list", false, "list dataset names and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range bytebrain.DatasetNames() {
			fmt.Println(n)
		}
		return
	}

	var ds *bytebrain.Dataset
	var err error
	switch *mode {
	case "loghub":
		ds, err = bytebrain.GenerateLogHub(*dataset, *seed)
	case "loghub2":
		ds, err = bytebrain.GenerateLogHub2(*dataset, *scale, *seed)
	default:
		log.Fatalf("unknown -n %q (want loghub or loghub2)", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, line := range ds.Lines {
		if *truth {
			fmt.Fprintf(w, "%d\t%s\n", ds.Truth[i], line)
		} else {
			fmt.Fprintln(w, line)
		}
	}
}
