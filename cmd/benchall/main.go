// Benchall regenerates every table and figure of the paper's evaluation
// and writes them as markdown (default: stdout; -out EXPERIMENTS-style
// file).
//
//	go run ./cmd/benchall                      # everything, default scale
//	go run ./cmd/benchall -exp table2,fig6     # selected artifacts
//	go run ./cmd/benchall -scale 0.01 -seed 7  # bigger cuts
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"bytebrain/internal/experiments"
)

func main() {
	var (
		expList = flag.String("exp", "", "comma-separated artifact IDs (default: all); see -list")
		list    = flag.Bool("list", false, "list artifact IDs and exit")
		scale   = flag.Float64("scale", 0.003, "LogHub-2.0 volume fraction")
		seed    = flag.Int64("seed", 1, "generation and clustering seed")
		thresh  = flag.Float64("threshold", 0.7, "GA evaluation saturation threshold")
		timeout = flag.Duration("timeout", 60*time.Second, "per-baseline per-dataset budget")
		fast    = flag.Bool("fast", false, "zero surrogate inference delays (breaks Fig. 2/6 fidelity)")
		out     = flag.String("out", "", "write markdown to this file instead of stdout")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Println(r.ID)
		}
		return
	}

	cfg := experiments.Config{
		Seed:           *seed,
		Scale:          *scale,
		Threshold:      *thresh,
		Timeout:        *timeout,
		FastSurrogates: *fast,
	}

	var ids []string
	if *expList == "" {
		for _, r := range experiments.Registry() {
			ids = append(ids, r.ID)
		}
	} else {
		ids = strings.Split(*expList, ",")
	}

	var sb strings.Builder
	sb.WriteString("# Regenerated evaluation artifacts\n\n")
	fmt.Fprintf(&sb, "Generated %s · seed %d · scale %.4f · threshold %.2f\n\n",
		time.Now().Format(time.RFC3339), *seed, *scale, *thresh)
	for _, id := range ids {
		start := time.Now()
		t, err := experiments.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Fprintf(os.Stderr, "%-8s done in %s\n", id, time.Since(start).Round(time.Millisecond))
		sb.WriteString(t.Markdown())
		sb.WriteString("\n")
	}

	if *out == "" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
