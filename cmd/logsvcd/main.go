// Logsvcd runs the cloud log-parsing service as an HTTP daemon (§3 of the
// paper): multi-topic ingestion with online matching, periodic retraining
// with model merging, and query-time precision control.
//
//	go run ./cmd/logsvcd -addr :8080 -train-volume 10000
//
//	curl -X PUT  localhost:8080/topics/app
//	curl -X POST localhost:8080/topics/app/logs --data-binary @app.log
//	curl -X POST localhost:8080/topics/app/train
//	curl 'localhost:8080/topics/app/query?threshold=0.7'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"bytebrain"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		trainVolume = flag.Int("train-volume", 10000, "retrain after this many new records")
		trainEvery  = flag.Duration("train-interval", 5*time.Minute, "retrain after this much time")
		sampleCap   = flag.Int("sample-cap", 50000, "training reservoir size (OOM guard)")
		threshold   = flag.Float64("threshold", 0.7, "default query threshold")
		parallel    = flag.Int("parallel", 4, "parser worker count")
		seed        = flag.Int64("seed", 1, "clustering seed")
	)
	flag.Parse()

	svc := bytebrain.NewService(bytebrain.ServiceConfig{
		Parser:           bytebrain.Options{Seed: *seed, Parallelism: *parallel},
		TrainVolume:      *trainVolume,
		TrainInterval:    *trainEvery,
		SampleCap:        *sampleCap,
		DefaultThreshold: *threshold,
	})
	log.Printf("logsvcd listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, svc.Handler()))
}
