// Logsvcd runs the cloud log-parsing service as an HTTP daemon (§3 of the
// paper): multi-topic ingestion with online matching, periodic retraining
// with model merging, and query-time precision control.
//
//	go run ./cmd/logsvcd -addr :8080 -train-volume 10000
//
//	curl -X PUT  localhost:8080/topics/app
//	curl -X POST localhost:8080/topics/app/logs --data-binary @app.log
//	curl -X POST localhost:8080/topics/app/train
//	curl 'localhost:8080/topics/app/query?threshold=0.7'
//	curl 'localhost:8080/topics/app/query?since=15m'
//	curl 'localhost:8080/topics/app/query?from=2026-07-26T12:00:00Z&to=2026-07-26T12:15:00Z'
//	curl localhost:8080/metrics
//
// With -debug-addr :6060, pprof profiles are served on a separate
// listener: `go tool pprof localhost:6060/debug/pprof/profile?seconds=10`.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bytebrain"
	"bytebrain/internal/segment"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		trainVolume  = flag.Int("train-volume", 10000, "retrain after this many new records")
		trainEvery   = flag.Duration("train-interval", 5*time.Minute, "retrain after this much time")
		sampleCap    = flag.Int("sample-cap", 50000, "training reservoir size (OOM guard)")
		threshold    = flag.Float64("threshold", 0.7, "default query threshold")
		parallel     = flag.Int("parallel", 4, "parser worker count")
		seed         = flag.Int64("seed", 1, "clustering seed")
		dataDir      = flag.String("data-dir", "", "persist topics (records + model snapshots) under this directory; empty = in-memory")
		segmentBytes = flag.Int64("segment-bytes", 0, "enable the compacting segment store: seal hot blocks of this raw size into compressed columnar segments (0 = disabled)")
		segmentCodec = flag.String("segment-codec", "flate", "sealed-segment payload codec: flate or none")
		topicShards  = flag.Int("topic-shards", 1, "fan each topic's store out over this many shards with queue affinity so appends scale with cores (1 = single store; a persisted topic's shard count must not shrink)")
		ingestQueues = flag.Int("ingest-queues", 4, "worker queues per async ingestion pipeline (POST /topics/{name}/logs?async=1)")
		ingestDepth  = flag.Int("ingest-queue-depth", 1024, "per-queue depth of the async ingestion pipeline (backpressure beyond it)")
		snapRetain   = flag.Int("snapshot-retain", 0, "keep only this many newest model snapshots per topic (0 = keep all)")
		snapCkpt     = flag.Int("snapshot-checkpoint-every", 0, "with -snapshot-retain, additionally keep every Nth snapshot as a checkpoint (0 = none)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof profiles on this separate address (empty = disabled); keep it off the public listener")
		slowQuery    = flag.Duration("slow-query", 0, "log a structured line for queries at or over this duration (0 = disabled)")
		lineCacheCap = flag.Int("line-cache-cap", 0, "distinct lines memoized per model snapshot before a whole-generation eviction (0 = default 65536)")
		fsyncEveryN  = flag.Int("wal-fsync-every-n", 0, "fsync topic WALs every N append batches (0 = rely on OS flush; durability of the tail rides on the page cache)")
		fsyncEveryT  = flag.Duration("wal-fsync-every-t", 0, "fsync dirty topic WALs at least this often (0 = disabled; combines with -wal-fsync-every-n)")
		ingestAddr   = flag.String("ingest-addr", "", "serve the streaming TCP ingest protocol (framed/raw, see README wire-protocol spec) on this address (empty = disabled)")
	)
	flag.Parse()
	if *segmentBytes > 0 {
		// Fail fast on a bad codec instead of 500ing every topic
		// creation at request time.
		if _, err := segment.ParseCodec(*segmentCodec); err != nil {
			log.Fatalf("logsvcd: -segment-codec: %v", err)
		}
	}

	svc := bytebrain.NewService(bytebrain.ServiceConfig{
		Parser:                  bytebrain.Options{Seed: *seed, Parallelism: *parallel},
		TrainVolume:             *trainVolume,
		TrainInterval:           *trainEvery,
		SampleCap:               *sampleCap,
		DefaultThreshold:        *threshold,
		DataDir:                 *dataDir,
		SegmentBytes:            *segmentBytes,
		SegmentCodec:            *segmentCodec,
		TopicShards:             *topicShards,
		IngestQueues:            *ingestQueues,
		IngestQueueDepth:        *ingestDepth,
		SnapshotRetain:          *snapRetain,
		SnapshotCheckpointEvery: *snapCkpt,
		LineCacheCap:            *lineCacheCap,
		SlowQueryThreshold:      *slowQuery,
		WALFsyncEveryBatches:    *fsyncEveryN,
		WALFsyncInterval:        *fsyncEveryT,
	})

	if *ingestAddr != "" {
		naddr, err := svc.StartNetIngest(*ingestAddr)
		if err != nil {
			log.Fatalf("logsvcd: -ingest-addr: %v", err)
		}
		log.Printf("logsvcd TCP ingest listening on %s", naddr)
	}

	// The pprof endpoints live on their own listener so profiling access
	// can be firewalled separately from the service API.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			log.Printf("logsvcd pprof listening on %s", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("logsvcd: debug server: %v", err)
			}
		}()
	}

	// On SIGINT/SIGTERM: drain in-flight HTTP requests, then flush and
	// close the stores (segment WALs, buffered appends).
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("logsvcd: shutdown: %v", err)
		}
		if debugSrv != nil {
			if err := debugSrv.Shutdown(ctx); err != nil {
				log.Printf("logsvcd: debug shutdown: %v", err)
			}
		}
	}()

	log.Printf("logsvcd listening on %s (data-dir=%q segment-bytes=%d topic-shards=%d)", *addr, *dataDir, *segmentBytes, *topicShards)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		log.Fatalf("logsvcd: close: %v", err)
	}
}
