// Bytebrain is the command-line interface to the parser: train a model
// from a log file, match logs against a saved model, list templates at a
// chosen precision, and query a running log service over HTTP.
//
//	bytebrain train -in app.log -model app.model
//	bytebrain match -in new.log -model app.model -threshold 0.7
//	bytebrain templates -model app.model -threshold 0.9
//	bytebrain query -addr http://localhost:8080 -topic app -since 15m
//	bytebrain query -addr http://localhost:8080 -topic app \
//	    -from 2026-07-26T12:00:00Z -to 2026-07-26T12:15:00Z
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"bytebrain"
	"bytebrain/internal/netingest"
)

// tcpAddr strips an http(s):// scheme so -addr works unchanged across
// -proto values.
func tcpAddr(addr string) string {
	addr = strings.TrimPrefix(addr, "http://")
	addr = strings.TrimPrefix(addr, "https://")
	return strings.TrimSuffix(addr, "/")
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bytebrain: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		cmdTrain(os.Args[2:])
	case "match":
		cmdMatch(os.Args[2:])
	case "templates":
		cmdTemplates(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:])
	case "ingest":
		cmdIngest(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  bytebrain train     -in <log file> -model <out model> [-seed N] [-parallel N]
  bytebrain match     -in <log file> -model <model> [-threshold T]
  bytebrain templates -model <model> [-threshold T]
  bytebrain ingest    -addr <service URL | host:port> -topic <name>
                      [-in <log file>] [-batch N] [-async]
                      [-proto http|tcp|tcp-raw] [-window N]
  bytebrain query     -addr <service URL> -topic <name> [-threshold T]
                      [-from RFC3339] [-to RFC3339] [-since 15m] [-merged]`)
	os.Exit(2)
}

func readLines(path string) []string {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var lines []string
	for sc.Scan() {
		if l := sc.Text(); l != "" {
			lines = append(lines, l)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return lines
}

func loadModel(path string) *bytebrain.Model {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	m := bytebrain.NewModel()
	if err := m.UnmarshalBinary(data); err != nil {
		log.Fatal(err)
	}
	return m
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	in := fs.String("in", "", "input log file")
	modelPath := fs.String("model", "", "output model file")
	seed := fs.Int64("seed", 1, "clustering seed")
	parallel := fs.Int("parallel", 4, "worker count")
	merge := fs.String("merge", "", "existing model to merge into")
	_ = fs.Parse(args)
	if *in == "" || *modelPath == "" {
		usage()
	}
	lines := readLines(*in)
	parser := bytebrain.New(bytebrain.Options{Seed: *seed, Parallelism: *parallel})
	var res *bytebrain.TrainResult
	var err error
	if *merge != "" {
		res, err = parser.TrainMerge(loadModel(*merge), lines)
	} else {
		res, err = parser.Train(lines)
	}
	if err != nil {
		log.Fatal(err)
	}
	data, err := res.Model.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*modelPath, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d nodes from %d logs → %s (%d bytes)\n",
		res.Model.Len(), len(lines), *modelPath, len(data))
}

func cmdMatch(args []string) {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	in := fs.String("in", "", "input log file")
	modelPath := fs.String("model", "", "model file")
	threshold := fs.Float64("threshold", 0.7, "saturation threshold")
	_ = fs.Parse(args)
	if *in == "" || *modelPath == "" {
		usage()
	}
	model := loadModel(*modelPath)
	parser := bytebrain.New(bytebrain.Options{})
	matcher, err := parser.NewMatcher(model)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, line := range readLines(*in) {
		m := matcher.Match(line)
		n, err := matcher.TemplateAt(m.NodeID, *threshold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\n", n.ID, bytebrain.DisplayTemplate(n.Template), line)
	}
}

// cmdIngest ships a log file (or stdin) into a running log service
// (cmd/logsvcd). The default -proto=http posts batches of lines so each
// request rides the service's group-committed ingestion path end to
// end; -async routes through the service's multi-queue pipeline (202 on
// enqueue) instead of synchronous ingestion. -proto=tcp speaks the
// streaming framed protocol against the service's -ingest-addr listener
// (persistent connection, pipelined frames, BUSY-aware resends), and
// -proto=tcp-raw streams newline-delimited lines with one final ack.
func cmdIngest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "service base URL (-proto=http) or host:port of the -ingest-addr listener (-proto=tcp, tcp-raw)")
	topic := fs.String("topic", "", "topic to ingest into")
	in := fs.String("in", "", "input log file (default stdin)")
	batch := fs.Int("batch", 4096, "lines per HTTP request / framed batch")
	async := fs.Bool("async", false, "enqueue on the service's async pipeline (HTTP 202; -proto=http only)")
	proto := fs.String("proto", "http", "wire protocol: http, tcp (framed), or tcp-raw (newline stream)")
	window := fs.Int("window", 8, "unacked frames in flight (-proto=tcp)")
	_ = fs.Parse(args)
	if *topic == "" || *batch <= 0 {
		usage()
	}
	var lines []string
	if *in == "" {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
		for sc.Scan() {
			if l := sc.Text(); l != "" {
				lines = append(lines, l)
			}
		}
		if err := sc.Err(); err != nil {
			log.Fatal(err)
		}
	} else {
		lines = readLines(*in)
	}
	switch *proto {
	case "http":
		// fall through to the HTTP path below
	case "tcp":
		c, err := netingest.Dial(tcpAddr(*addr), netingest.ClientOptions{Window: *window})
		if err != nil {
			log.Fatal(err)
		}
		for start := 0; start < len(lines); start += *batch {
			end := min(start+*batch, len(lines))
			if err := c.Send(*topic, lines[start:end]); err != nil {
				log.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %d lines into %s (framed tcp)\n", len(lines), *topic)
		return
	case "tcp-raw":
		c, err := netingest.DialRaw(tcpAddr(*addr), *topic)
		if err != nil {
			log.Fatal(err)
		}
		for _, l := range lines {
			if err := c.WriteLine([]byte(l)); err != nil {
				log.Fatal(err)
			}
		}
		n, err := c.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %d lines into %s (raw tcp)\n", n, *topic)
		return
	default:
		log.Fatalf("-proto=%s: want http, tcp, or tcp-raw", *proto)
	}
	u := strings.TrimSuffix(*addr, "/") + "/topics/" + url.PathEscape(*topic) + "/logs"
	if *async {
		u += "?async=1"
	}
	sent := 0
	for len(lines) > 0 {
		n := *batch
		if n > len(lines) {
			n = len(lines)
		}
		body := strings.NewReader(strings.Join(lines[:n], "\n"))
		lines = lines[n:]
		resp, err := http.Post(u, "text/plain", body)
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			log.Fatalf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		sent += n
	}
	fmt.Printf("ingested %d lines into %s\n", sent, *topic)
}

// cmdQuery runs a grouped template query against a running log service
// (cmd/logsvcd) over its HTTP API, with optional time-range bounds that
// the service pushes down to sealed-segment metadata.
func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "log service base URL")
	topic := fs.String("topic", "", "topic to query")
	threshold := fs.Float64("threshold", 0, "saturation threshold in (0,1]; 0 uses the service default")
	from := fs.String("from", "", "inclusive lower time bound, RFC 3339 (e.g. 2026-07-26T12:00:00Z)")
	to := fs.String("to", "", "inclusive upper time bound, RFC 3339")
	since := fs.String("since", "", "duration shorthand for -from=now-since (e.g. 15m); excludes -from/-to")
	merged := fs.Bool("merged", false, "merge display-identical templates into one row")
	_ = fs.Parse(args)
	if *topic == "" {
		usage()
	}
	// Validate client-side for a friendly error; the server re-validates.
	q := url.Values{}
	if *threshold != 0 {
		q.Set("threshold", strconv.FormatFloat(*threshold, 'g', -1, 64))
	}
	if *since != "" {
		if *from != "" || *to != "" {
			log.Fatal("-since excludes -from/-to")
		}
		if _, err := time.ParseDuration(*since); err != nil {
			log.Fatalf("-since: %v", err)
		}
		q.Set("since", *since)
	}
	for _, bound := range []struct{ flag, val string }{{"from", *from}, {"to", *to}} {
		if bound.val == "" {
			continue
		}
		if _, err := time.Parse(time.RFC3339, bound.val); err != nil {
			log.Fatalf("-%s: %v", bound.flag, err)
		}
		q.Set(bound.flag, bound.val)
	}
	if *merged {
		q.Set("merged", "1")
	}
	u := strings.TrimSuffix(*addr, "/") + "/topics/" + url.PathEscape(*topic) + "/query"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		log.Fatalf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var rows []bytebrain.TemplateRow
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, r := range rows {
		fmt.Fprintf(w, "%8d  sat=%.2f  count=%-8d %s\n", r.TemplateID, r.Saturation, r.Count, r.Template)
	}
}

func cmdTemplates(args []string) {
	fs := flag.NewFlagSet("templates", flag.ExitOnError)
	modelPath := fs.String("model", "", "model file")
	threshold := fs.Float64("threshold", 0.7, "saturation threshold")
	_ = fs.Parse(args)
	if *modelPath == "" {
		usage()
	}
	model := loadModel(*modelPath)
	for _, n := range model.TemplatesAtThreshold(*threshold) {
		fmt.Printf("%8d  sat=%.2f  weight=%-8d %s\n",
			n.ID, n.Saturation, n.Weight, bytebrain.DisplayTemplate(n.Template))
	}
}
