// Allocation-regression budgets for the ingestion hot path. The CI
// allocation smoke step runs these with BYTEBRAIN_ALLOC_BUDGET=1; they
// measure the steady-state paths via testing.Benchmark and fail when
// allocs/op exceeds the checked-in budgets below. The budgets carry ~2x
// headroom over currently measured values, so they catch a regression to
// per-line allocation (the pre-group-commit shape) without flaking on
// map-growth noise.
package bytebrain_test

import (
	"os"
	"testing"
	"time"

	"bytebrain"
	"bytebrain/internal/netingest"
	"bytebrain/internal/obs"
)

const (
	// allocBudgetPerIngestedLine bounds allocations per line on the
	// steady-state tokenize→match→append path (currently ~3.0: index
	// growth amortization plus sealed-segment bookkeeping; the per-record
	// baseline before group commit measured ~8.3).
	allocBudgetPerIngestedLine = 6.0
	// allocBudgetPerMatch bounds allocations per uncached Matcher.Match
	// call (currently 4: replaced line, token slice, and match scratch).
	allocBudgetPerMatch = 8
)

func TestAllocBudget(t *testing.T) {
	if os.Getenv("BYTEBRAIN_ALLOC_BUDGET") == "" {
		t.Skip("set BYTEBRAIN_ALLOC_BUDGET=1 to enforce allocation budgets (CI smoke step)")
	}
	ds, err := bytebrain.GenerateLogHub("Zookeeper", 1)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("ingest", func(t *testing.T) {
		svc := bytebrain.NewService(bytebrain.ServiceConfig{
			Parser:       bytebrain.Options{Seed: 1},
			TrainVolume:  1 << 30,
			DataDir:      t.TempDir(),
			SegmentBytes: 16 << 20,
			SegmentCodec: "flate",
		})
		defer svc.Close()
		if err := svc.CreateTopic("bench"); err != nil {
			t.Fatal(err)
		}
		if err := svc.Ingest("bench", ds.Lines); err != nil {
			t.Fatal(err)
		}
		if err := svc.Train("bench"); err != nil {
			t.Fatal(err)
		}
		batch := ds.Lines[:256]
		// Warm the steady state (line cache, index capacity) before
		// measuring, exactly like a long-running ingester.
		for i := 0; i < 20; i++ {
			if err := svc.Ingest("bench", batch); err != nil {
				t.Fatal(err)
			}
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := svc.Ingest("bench", batch); err != nil {
					b.Fatal(err)
				}
			}
		})
		perLine := float64(res.AllocsPerOp()) / float64(len(batch))
		t.Logf("ingest: %d allocs/op over %d-line batches = %.2f allocs/line (budget %.2f)",
			res.AllocsPerOp(), len(batch), perLine, allocBudgetPerIngestedLine)
		if perLine > allocBudgetPerIngestedLine {
			t.Fatalf("steady-state ingest allocations regressed: %.2f allocs/line exceeds budget %.2f",
				perLine, allocBudgetPerIngestedLine)
		}
	})

	// The telemetry layer must be free on the hot path: the full
	// per-batch instrumentation sequence (two stage timings, two
	// histogram observations, four counter updates) stays within one
	// allocation per 256-line batch — measured here at zero.
	t.Run("instrumentation", func(t *testing.T) {
		reg := obs.NewRegistry()
		lines := reg.Counter("lines_total", "t", "topic").With("bench")
		batches := reg.Counter("batches_total", "t", "topic").With("bench")
		hits := reg.Counter("hits_total", "t", "topic").With("bench")
		misses := reg.Counter("misses_total", "t", "topic").With("bench")
		match := reg.Histogram("match_seconds", "t", obs.LatencyBuckets, "topic").With("bench")
		appendH := reg.Histogram("append_seconds", "t", obs.LatencyBuckets, "topic").With("bench")
		perBatch := testing.AllocsPerRun(1000, func() {
			start := time.Now()
			hits.Add(200)
			misses.Add(56)
			mid := time.Now()
			match.ObserveDuration(mid.Sub(start))
			appendH.ObserveDuration(time.Since(mid))
			lines.Add(256)
			batches.Inc()
		})
		t.Logf("instrumentation: %.2f allocs per 256-line batch (budget 1)", perBatch)
		if perBatch > 1 {
			t.Fatalf("per-batch instrumentation allocates: %.2f allocs/batch exceeds budget 1", perBatch)
		}
	})

	// The framed ingest protocol promises a zero-allocation decode
	// loop: header parse plus body decode into a reused Frame touch no
	// heap at all (the single permitted copy happens later, when the
	// worker moves the line block out of the pooled read buffer). This
	// budget is exact — any regression to per-frame or per-line
	// allocation in Decode fails here.
	t.Run("framedecode", func(t *testing.T) {
		enc, err := netingest.AppendFrame(nil, 1, "bench", ds.Lines[:32])
		if err != nil {
			t.Fatal(err)
		}
		body := enc[netingest.HeaderSize:]
		var f netingest.Frame
		perFrame := testing.AllocsPerRun(1000, func() {
			h := netingest.ParseHeader(enc)
			if err := f.Decode(h, body); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("frame decode: %.2f allocs per 32-line frame (budget 0)", perFrame)
		if perFrame > 0 {
			t.Fatalf("frame decode allocates: %.2f allocs/frame exceeds budget 0", perFrame)
		}
	})

	t.Run("match", func(t *testing.T) {
		parser := bytebrain.New(bytebrain.Options{Seed: 1})
		res, err := parser.Train(ds.Lines)
		if err != nil {
			t.Fatal(err)
		}
		matcher, err := parser.NewMatcher(res.Model)
		if err != nil {
			t.Fatal(err)
		}
		bres := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				matcher.Match(ds.Lines[i%len(ds.Lines)])
			}
		})
		t.Logf("match: %d allocs/op (budget %d)", bres.AllocsPerOp(), allocBudgetPerMatch)
		if bres.AllocsPerOp() > allocBudgetPerMatch {
			t.Fatalf("match allocations regressed: %d allocs/op exceeds budget %d",
				bres.AllocsPerOp(), allocBudgetPerMatch)
		}
	})
}
