package bytebrain_test

import (
	"strings"
	"testing"
	"time"

	"bytebrain"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := bytebrain.GenerateLogHub("HDFS", 1)
	if err != nil {
		t.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 1})
	res, err := parser.Train(ds.Lines)
	if err != nil {
		t.Fatal(err)
	}
	matcher, err := parser.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]int, len(ds.Lines))
	for i, line := range ds.Lines {
		m := matcher.Match(line)
		n, err := res.Model.TemplateAt(m.NodeID, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		pred[i] = int(n.ID)
	}
	ga, err := bytebrain.GroupingAccuracy(pred, ds.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if ga < 0.9 {
		t.Errorf("public-API GA on HDFS = %v, want >= 0.9", ga)
	}
}

func TestPublicAPIPrecisionSlider(t *testing.T) {
	lines := []string{
		"release lock 42 tag A name systemui",
		"release lock 77 tag B name android",
		"release lock 91 tag A name android",
		"acquire lock 11 tag C name phone",
		"acquire lock 23 tag A name phone",
		"acquire lock 35 tag B name systemui",
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 1})
	res, err := parser.Train(lines)
	if err != nil {
		t.Fatal(err)
	}
	coarse := res.Model.TemplatesAtThreshold(0.05)
	fine := res.Model.TemplatesAtThreshold(0.95)
	if len(coarse) > len(fine) {
		t.Errorf("coarse view (%d templates) larger than fine view (%d)", len(coarse), len(fine))
	}
}

func TestPublicAPIServiceAndAnalytics(t *testing.T) {
	now := time.Unix(1700000000, 0)
	svc := bytebrain.NewService(bytebrain.ServiceConfig{
		Parser:      bytebrain.Options{Seed: 1},
		TrainVolume: 1 << 30,
		Now:         func() time.Time { return now },
	})
	if err := svc.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i := 0; i < 60; i++ {
		lines = append(lines, "worker started on node node-"+strings.Repeat("x", i%3+1))
	}
	if err := svc.Ingest("app", lines); err != nil {
		t.Fatal(err)
	}
	if err := svc.Train("app"); err != nil {
		t.Fatal(err)
	}
	rows, err := svc.Query("app", 0.5, bytebrain.TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows from service query")
	}

	// Analytics over two windows.
	before := bytebrain.TemplateCounts{1: 100, 2: 10}
	after := bytebrain.TemplateCounts{1: 100, 2: 90, 3: 5}
	changes := bytebrain.CompareWindows(before, after, 4)
	if len(changes) == 0 {
		t.Error("no anomalies detected in a clearly changed window")
	}
	if div := bytebrain.DistributionDivergence(before, after); div <= 0 {
		t.Errorf("divergence = %v, want > 0", div)
	}
	lib := bytebrain.NewTemplateLibrary()
	lib.Save("worker-start", "worker started on node <*>")
	lib.AddScenario(bytebrain.FailureScenario{Name: "restart-storm", Templates: []string{"worker started"}})
	if got := lib.MatchScenarios([]string{"worker started on node <*>"}); len(got) != 1 {
		t.Errorf("scenario match = %v", got)
	}
}

func TestPublicAPIDisplayTemplate(t *testing.T) {
	got := bytebrain.DisplayTemplate([]string{"users", bytebrain.Wildcard, bytebrain.Wildcard})
	want := "users " + bytebrain.Wildcard
	if got != want {
		t.Errorf("DisplayTemplate = %q, want %q", got, want)
	}
}

func TestPublicAPICustomTokenizer(t *testing.T) {
	tok, err := bytebrain.NewRegexpTokenizer(`[\s|]+`)
	if err != nil {
		t.Fatal(err)
	}
	got := tok.Tokenize("a|b c")
	if len(got) != 3 {
		t.Errorf("custom tokenizer produced %v", got)
	}
	if _, err := bytebrain.NewRegexpTokenizer("(bad"); err == nil {
		t.Error("invalid pattern accepted")
	}
}

func TestPublicAPIModelRoundTrip(t *testing.T) {
	parser := bytebrain.New(bytebrain.Options{Seed: 1})
	res, err := parser.Train([]string{"a b c1", "a b c2", "x y z"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Model.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := bytebrain.NewModel()
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != res.Model.Len() {
		t.Errorf("round trip: %d vs %d nodes", restored.Len(), res.Model.Len())
	}
}
