module bytebrain

go 1.24
